// Package core implements the paper's contribution: random pattern
// generation for at-speed testing of full-scan circuits with randomly
// inserted limited scan operations.
//
// The flow mirrors Section 3 of the paper:
//
//   - An initial random test set TS0 of 2N tests (N of length L_A, N of
//     length L_B) is generated from a dedicated, fixed-seed random source
//     so it can be regenerated at will (GenerateTS0).
//   - Procedure 1 derives a test set TS(I,D1) from TS0 by inserting
//     limited scan operations at random time units: at each time unit
//     0 < u < L_i a draw r1 mod D1 decides (probability 1/D1) whether to
//     shift, and a second draw r2 mod D2 with D2 = N_SV + 1 picks the
//     shift amount (InsertLimitedScans).
//   - Procedure 2 greedily accumulates pairs (I,D1) whose test sets
//     detect new faults, simulating with fault dropping, until every
//     detectable fault is covered or N_SAME_FC consecutive iterations
//     bring no improvement (RunProcedure2).
package core

import (
	"context"
	"fmt"
	"time"

	"limscan/internal/atpg"
	"limscan/internal/checkpoint"
	"limscan/internal/circuit"
	"limscan/internal/errs"
	"limscan/internal/fault"
	"limscan/internal/fsim"
	"limscan/internal/lfsr"
	"limscan/internal/logic"
	"limscan/internal/obs"
	"limscan/internal/scan"
	"limscan/internal/trace"
)

// Config collects the paper's tunable parameters.
type Config struct {
	// LA, LB and N define TS0: N tests of length LA and N of length LB.
	LA, LB, N int
	// Seed is the campaign base seed. TS0 uses it directly; iteration I
	// of Procedure 1 uses the derived seed(I).
	Seed uint64
	// D1Order is the sequence of D1 values Procedure 2 tries at each
	// iteration. Nil means the paper's default 1,2,...,10; Table 7 uses
	// the descending order 10,9,...,1.
	D1Order []int
	// NSameFC is the number of consecutive iterations without coverage
	// improvement after which Procedure 2 gives up (the paper's
	// N_SAME_FC constant). Zero means 2.
	NSameFC int
	// MaxIterations caps I as a safety net. Zero means 60.
	MaxIterations int
	// ReseedPerTest follows the letter of Procedure 1: the random number
	// generator is re-initialized with seed(I) for every test, so equal-
	// length tests of one TS(I,D1) share a schedule. Disabling it keeps
	// one stream across the whole test set (an ablation knob).
	ReseedPerTest bool
	// UseLFSR draws every random value from a maximal-length LFSR bit
	// stream instead of the software SplitMix generator — the hardware-
	// faithful mode matching the paper's claim that the whole test
	// program regenerates from an LFSR with simple control logic. Both
	// modes are exactly reproducible; they produce different (equally
	// valid) test sets.
	UseLFSR bool
	// LFSRDegree sets the register width for UseLFSR. Zero means 32.
	LFSRDegree int
	// Observer receives campaign metrics, structured progress events and
	// phase spans (see internal/obs). Nil runs uninstrumented at zero
	// overhead.
	Observer *obs.Campaign
	// Workers is the number of goroutines fault simulation shards its
	// batches across (see fsim.Options.Workers). Zero defers to the
	// runner's SetWorkers value, and from there to GOMAXPROCS. Results
	// are byte-identical at any worker count.
	Workers int
	// Mode selects the fault-simulation lane packing for every run of
	// the campaign (see fsim.Options.Mode). The zero value is
	// fault-parallel; pattern-parallel is byte-identical and faster on
	// multi-test sessions, but requires full scan and stuck-at faults.
	Mode fsim.Mode
}

// newSource builds the configured random source for a given seed. An
// invalid LFSR degree falls back to SplitMix so a campaign in progress
// still completes, but never silently: the fallback bumps the
// rng_lfsr_fallback_total counter and emits a warning event, and
// Validate rejects the configuration up front.
func (c Config) newSource(seed uint64) lfsr.Source {
	if c.UseLFSR {
		deg := c.LFSRDegree
		if deg == 0 {
			deg = 32
		}
		src, err := lfsr.NewSource(deg, seed)
		if err == nil {
			return src
		}
		c.Observer.Counter("rng_lfsr_fallback_total").Inc()
		c.Observer.Emit(obs.Event{
			Kind: obs.KindWarning,
			Msg:  fmt.Sprintf("UseLFSR requested but %v; falling back to SplitMix", err),
		})
	}
	return lfsr.NewSplitMix(seed)
}

func (c Config) withDefaults() Config {
	if c.D1Order == nil {
		c.D1Order = AscendingD1()
	}
	if c.NSameFC == 0 {
		c.NSameFC = 2
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 30
	}
	return c
}

// Validate rejects impossible parameter combinations.
func (c Config) Validate() error {
	if c.LA < 1 || c.LB < 1 || c.N < 1 {
		return fmt.Errorf("core: LA, LB and N must be positive (got %d, %d, %d)", c.LA, c.LB, c.N)
	}
	for _, d := range c.D1Order {
		if d < 1 {
			return fmt.Errorf("core: D1 values must be >= 1 (got %d)", d)
		}
	}
	if c.UseLFSR && c.LFSRDegree != 0 {
		if _, err := lfsr.NewSource(c.LFSRDegree, 1); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := (fsim.Options{Mode: c.Mode}).Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0 (got %d; zero means GOMAXPROCS)", c.Workers)
	}
	return nil
}

// AscendingD1 returns the paper's default D1 schedule 1..10.
func AscendingD1() []int {
	out := make([]int, 10)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// DescendingD1 returns the Table 7 schedule 10..1, which favors longer
// at-speed sequences between scan operations.
func DescendingD1() []int {
	out := make([]int, 10)
	for i := range out {
		out[i] = 10 - i
	}
	return out
}

// GenerateTS0 builds the base test set for a full-scan circuit: N random
// tests of length LA followed by N of length LB, all drawn from one
// source seeded with seed, so the set is exactly reproducible (the
// paper's dedicated PRPG).
func GenerateTS0(c *circuit.Circuit, cfg Config) []scan.Test {
	return GenerateTS0WithPlan(c, scan.FullScan(c.NumSV()), cfg)
}

// GenerateTS0WithPlan is GenerateTS0 for an arbitrary scan plan: the
// scan-in vectors cover only the scanned positions.
func GenerateTS0WithPlan(c *circuit.Circuit, plan scan.Plan, cfg Config) []scan.Test {
	src := cfg.newSource(cfg.Seed)
	tests := make([]scan.Test, 0, 2*cfg.N)
	gen := func(length int) scan.Test {
		t := scan.Test{SI: logic.NewVec(plan.Len())}
		for b := 0; b < plan.Len(); b++ {
			t.SI.Set(b, src.Bit())
		}
		for u := 0; u < length; u++ {
			v := logic.NewVec(c.NumPI())
			for b := 0; b < c.NumPI(); b++ {
				v.Set(b, src.Bit())
			}
			t.T = append(t.T, v)
		}
		return t
	}
	for i := 0; i < cfg.N; i++ {
		tests = append(tests, gen(cfg.LA))
	}
	for i := 0; i < cfg.N; i++ {
		tests = append(tests, gen(cfg.LB))
	}
	return tests
}

// InsertLimitedScans is Procedure 1 for a full-scan circuit: it derives
// TS(I,D1) from ts0. Every test keeps its SI and vectors; limited scan
// operations are inserted at time units 0 < u < L_i with probability
// 1/d1, shifting by r2 mod D2 positions where D2 = N_SV + 1, with the
// scanned-in fill bits drawn from the same stream. The schedule is a
// pure function of (cfg.Seed, I, d1).
func InsertLimitedScans(c *circuit.Circuit, ts0 []scan.Test, iteration, d1 int, cfg Config) []scan.Test {
	return InsertLimitedScansWithPlan(c, scan.FullScan(c.NumSV()), ts0, iteration, d1, cfg)
}

// InsertLimitedScansWithPlan is Procedure 1 over an arbitrary scan plan:
// D2 becomes the chain length plus one.
func InsertLimitedScansWithPlan(c *circuit.Circuit, plan scan.Plan, ts0 []scan.Test, iteration, d1 int, cfg Config) []scan.Test {
	cfg = cfg.withDefaults()
	d2 := plan.Len() + 1
	// seed(I) depends on I alone, as in the paper: the stored pair
	// (I, D1) fully determines TS(I,D1), and sets with equal I share a
	// draw stream interpreted through different moduli.
	seedI := lfsr.DeriveSeed(cfg.Seed, iteration)
	src := cfg.newSource(seedI)
	out := make([]scan.Test, len(ts0))
	for i := range ts0 {
		if cfg.ReseedPerTest {
			src = cfg.newSource(seedI)
		}
		t := scan.Test{
			SI:    ts0[i].SI,
			T:     ts0[i].T,
			Shift: make([]int, len(ts0[i].T)),
			Fill:  make([][]uint8, len(ts0[i].T)),
		}
		for u := 1; u < len(t.T); u++ {
			if lfsr.DrawZero(src, d1) {
				sh := lfsr.DrawMod(src, d2)
				t.Shift[u] = sh
				if sh > 0 {
					fill := make([]uint8, sh)
					for k := range fill {
						fill[k] = src.Bit()
					}
					t.Fill[u] = fill
				}
			}
		}
		out[i] = t
	}
	return out
}

// CoveragePoint is one sample of the campaign coverage curve, taken
// when a pair was selected: the cumulative detections and cycle cost
// after TS(I,D1) joined the program.
type CoveragePoint struct {
	I, D1    int
	Detected int
	Cycles   int64
	Coverage float64
}

// PairResult records one selected (I,D1) pair.
type PairResult struct {
	I, D1 int
	// Detected is the number of faults newly detected by TS(I,D1).
	Detected int
	// Cycles is N_cyc(I,D1) = N_cyc0 + N_SH(I,D1).
	Cycles int64
}

// Result is the outcome of Procedure 2 for one parameter combination.
type Result struct {
	Config Config

	// TotalFaults is the size of the collapsed fault universe;
	// Untestable counts ATPG-proven redundancies; Aborted counts faults
	// whose classification was inconclusive.
	TotalFaults int
	Untestable  int
	Aborted     int

	// InitialDetected and InitialCycles describe TS0 (the paper's
	// "initial" columns): faults detected and N_cyc0.
	InitialDetected int
	InitialCycles   int64

	// Pairs lists the selected (I,D1) pairs in selection order (the
	// paper's ID1_PAIRS; "app" is len(Pairs)).
	Pairs []PairResult
	// Curve samples the coverage curve at each selected pair.
	Curve []CoveragePoint
	// Detected is the total number of detected faults after all pairs.
	Detected int
	// TotalCycles is the paper's ~N_cyc: N_cyc0 plus the cost of every
	// selected TS(I,D1). Zero pairs means TS0 alone suffices and the
	// paper reports no "with lim. scan" columns.
	TotalCycles int64
	// AvgLS is the paper's ls statistic over the selected test sets.
	AvgLS float64
	// Complete reports whether every provably-detectable fault was
	// detected: nothing remains Undetected. Faults whose ATPG
	// classification was inconclusive even at the retry limit stay
	// Aborted and are reported in the Aborted field rather than blocking
	// completeness — the standard ATPG test-coverage convention.
	Complete bool
	// Iterations is the number of I values Procedure 2 consumed.
	Iterations int
	// CheckpointDegraded reports that the campaign finished while the
	// checkpoint writer was degraded: the final snapshot write failed
	// even after retries, so the on-disk snapshot (if any) is stale. The
	// result itself is complete and correct — checkpointing never feeds
	// back into Procedure 2 — but the CLIs exit with a distinct code so
	// operators notice.
	CheckpointDegraded bool
}

// Coverage returns detected / (total - untestable).
func (r *Result) Coverage() float64 {
	den := r.TotalFaults - r.Untestable
	if den == 0 {
		return 1
	}
	return float64(r.Detected) / float64(den)
}

// Runner bundles the per-circuit machinery needed to run campaigns.
type Runner struct {
	c    *circuit.Circuit
	plan scan.Plan
	sim  *fsim.Simulator
	eng  *atpg.Engine
	// verdicts caches ATPG classifications: a fault's detectability is a
	// property of the circuit alone, so campaigns over many parameter
	// combinations classify each fault at most once. hard records
	// whether an Aborted verdict already survived the high-limit retry.
	verdicts map[fault.Fault]atpg.Verdict
	hard     map[fault.Fault]bool
	// trans is the lazily built two-frame transition ATPG engine.
	trans *atpg.TransEngine
	// obs is the runner-level observer, used when a Config carries none.
	obs *obs.Campaign
	// tracer, when set, records an execution trace of every run: phase
	// spans arrive through the obs.PhaseHook seam, and the runner
	// threads the recorder into fsim and the checkpoint writer for the
	// worker-level spans.
	tracer *trace.Recorder
	// sessions, when set, intercepts every fault-simulation session of a
	// campaign (see SessionRunner in units.go) — the distributed-dispatch
	// seam. Nil keeps the in-process simulator.
	sessions SessionRunner
	// workers is the runner-level fault-simulation worker count, used
	// when a Config carries none (and by the cfg-less entry points:
	// TopOff, CoverageCurve).
	workers int
	// mode is the fault-simulation lane packing used when Config.Mode is
	// left at the zero value (see SetMode).
	mode fsim.Mode
}

// SetObserver attaches a campaign observer to every run the runner
// executes (RunProcedure2, TopOff, FirstComplete). A Config.Observer, if
// set, takes precedence for that run. Nil detaches.
func (r *Runner) SetObserver(o *obs.Campaign) { r.obs = o }

// SetTracer attaches an execution-trace recorder to every run the
// runner executes: fault-simulation runs, per-worker batches, merges
// and checkpoint writes become spans (see internal/trace). Campaign
// phase spans are not recorded here — attach the same recorder to the
// observer with SetPhaseHook (the CLIs do both). Nil detaches. Tracing
// is purely observational: traced and untraced campaigns produce
// byte-identical results.
func (r *Runner) SetTracer(tr *trace.Recorder) { r.tracer = tr }

// observer resolves the effective observer for a run.
func (r *Runner) observer(cfg Config) *obs.Campaign {
	if cfg.Observer != nil {
		return cfg.Observer
	}
	return r.obs
}

// SetWorkers sets the fault-simulation worker count for every run the
// runner executes (see fsim.Options.Workers). A Config.Workers, if
// nonzero, takes precedence for that run; zero restores the default
// (GOMAXPROCS). Negative values are clamped to the serial path.
func (r *Runner) SetWorkers(n int) {
	if n < 0 {
		n = 1
	}
	r.workers = n
}

// fsimWorkers resolves the effective worker count for a run.
func (r *Runner) fsimWorkers(cfg Config) int {
	if cfg.Workers != 0 {
		return cfg.Workers
	}
	return r.workers
}

// SetMode sets the fault-simulation lane packing for every run the
// runner executes (see fsim.Options.Mode). A Config.Mode, if not
// fault-parallel, takes precedence for that run. Campaign results are
// byte-identical in either mode.
func (r *Runner) SetMode(m fsim.Mode) { r.mode = m }

// fsimMode resolves the effective simulation mode for a run.
func (r *Runner) fsimMode(cfg Config) fsim.Mode {
	if cfg.Mode != fsim.FaultParallel {
		return cfg.Mode
	}
	return r.mode
}

// NewRunner returns a full-scan Runner for the circuit.
func NewRunner(c *circuit.Circuit) *Runner {
	r, err := NewRunnerWithPlan(c, scan.FullScan(c.NumSV()))
	if err != nil {
		panic(err) // full scan over the circuit's own N_SV cannot fail
	}
	return r
}

// NewRunnerWithPlan returns a Runner over an arbitrary scan plan. Under
// partial scan the PODEM classification remains sound for untestability
// (a fault undetectable with full control is undetectable with less) but
// "testable" verdicts assume full scan, so Complete is generally
// unreachable and campaigns are judged by Coverage instead.
func NewRunnerWithPlan(c *circuit.Circuit, plan scan.Plan) (*Runner, error) {
	s, err := fsim.NewWithPlan(c, plan)
	if err != nil {
		return nil, err
	}
	return &Runner{
		c: c, plan: plan, sim: s, eng: atpg.New(c),
		verdicts: make(map[fault.Fault]atpg.Verdict),
		hard:     make(map[fault.Fault]bool),
	}, nil
}

// retryLimit scales the high-effort PODEM backtrack budget inversely
// with circuit size: each backtrack costs one O(gates) implication pass,
// so a fixed limit would make hard instances on large circuits take
// minutes each.
func (r *Runner) retryLimit() int {
	limit := 200000000 / (r.c.NumGates() + 1)
	if limit > 500000 {
		limit = 500000
	}
	if limit < 20000 {
		limit = 20000
	}
	return limit
}

// classifyRemaining marks ATPG-proven untestable (and aborted) faults in
// fs, using the runner's verdict cache. Faults aborted at the default
// backtrack limit get a second, 50x harder attempt: a handful of
// hard-to-prove redundancies would otherwise block the "complete
// coverage" criterion forever.
func (r *Runner) classifyRemaining(fs *fault.Set) (untestable, aborted int) {
	// Cap the number of expensive high-limit retries per call so a large
	// circuit with many hard instances cannot stall a campaign; the
	// verdict cache makes later calls pick up where this one stopped.
	retries := 32
	for _, i := range fs.Remaining() {
		f := fs.Faults[i]
		v, ok := r.verdicts[f]
		if !ok {
			v, _ = r.eng.Generate(f)
			r.verdicts[f] = v
		}
		if v == atpg.Aborted && !r.hard[f] && retries > 0 {
			retries--
			r.hard[f] = true
			saved := r.eng.BacktrackLimit
			r.eng.BacktrackLimit = r.retryLimit()
			v, _ = r.eng.Generate(f)
			r.eng.BacktrackLimit = saved
			r.verdicts[f] = v
		}
		switch v {
		case atpg.Untestable:
			fs.State[i] = fault.Untestable
			untestable++
		case atpg.Aborted:
			fs.State[i] = fault.Aborted
			aborted++
		}
	}
	return untestable, aborted
}

// Circuit returns the runner's netlist.
func (r *Runner) Circuit() *circuit.Circuit { return r.c }

// NewFaultSet builds the collapsed stuck-at fault set for the circuit.
func (r *Runner) NewFaultSet() *fault.Set {
	reps, _ := fault.Collapse(r.c, fault.Universe(r.c))
	return fault.NewSet(reps)
}

// RunProcedure2 executes Procedure 2 for one parameter combination on a
// fresh fault set and returns the full result. The detectability target
// is established by simulating TS0 first and then ATPG-classifying only
// the faults TS0 missed (anything TS0 detects is trivially testable).
func (r *Runner) RunProcedure2(cfg Config) (*Result, error) {
	return r.run(context.Background(), cfg, nil, nil)
}

// run is the shared Procedure 2 engine behind RunProcedure2,
// RunWithContext and ResumeWithContext. A nil snap starts fresh; a
// non-nil snap restores the fault set, selected pairs and accumulated
// totals from a checkpoint and continues at the next iteration. Because
// iteration I's schedule is a pure function of (Seed, I) and the fault
// set at the iteration boundary, the continued run retraces exactly the
// iterations the uninterrupted run would have executed.
func (r *Runner) run(ctx context.Context, cfg Config, ck *CheckpointOptions, snap *checkpoint.Snapshot) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := r.observer(cfg)
	cfg.Observer = o // newSource warnings reach the effective observer
	fs := r.NewFaultSet()
	res := &Result{Config: cfg, TotalFaults: len(fs.Faults)}
	o.Emit(obs.Event{Kind: obs.KindCampaignStart, Circuit: r.c.Name, Faults: res.TotalFaults})
	o.Counter("campaign_runs_total").Inc()
	ckw := &checkpointWriter{opts: ck, o: o, tr: r.tracer, wroteIter: -1}

	// Step 2: generate TS0. On resume this regenerates the identical
	// test set (it is a pure function of the configured seed) without
	// re-simulating it.
	span := o.StartPhase("ts0_gen")
	ts0 := GenerateTS0WithPlan(r.c, r.plan, cfg)
	span.End()

	var running, nSame, startIter int
	var selected [][]scan.Test
	if snap == nil {
		span = o.StartPhase("ts0_sim")
		st, err := r.runSession(ctx, cfg, SessionRef{}, ts0, fs, o)
		span.End()
		if err != nil {
			if ctx.Err() != nil {
				// Nothing completed: no snapshot to flush.
				return nil, &InterruptedError{Err: ctx.Err()}
			}
			return nil, err
		}
		res.InitialDetected = st.Detected
		res.InitialCycles = st.Cycles
		res.TotalCycles = st.Cycles
		o.Counter("campaign_cycles_total").Add(st.Cycles)
		o.Counter("campaign_detected_total").Add(int64(st.Detected))

		// Classify what TS0 missed so that "complete coverage" means
		// "all detectable faults" exactly as the paper reports it.
		span = o.StartPhase("classify")
		res.Untestable, res.Aborted = r.classifyRemaining(fs)
		span.End()
		o.Counter("campaign_untestable_total").Add(int64(res.Untestable))
		running = res.InitialDetected
		startIter = 1
		// The TS0 boundary is always worth a snapshot: the simulation
		// and classification above are the campaign's fixed cost.
		if err := ckw.boundary(r, cfg, res, fs, nSame, true); err != nil {
			return nil, err
		}
	} else {
		var err error
		running, nSame, err = restore(snap, res, fs)
		if err != nil {
			return nil, err
		}
		startIter = snap.Iteration + 1
		// Regenerate the selected test sets (pure functions of the
		// stored (I, D1) pairs) so AvgLS is computed over the same sets
		// the uninterrupted run accumulated.
		span = o.StartPhase("resume_regen")
		for _, p := range res.Pairs {
			selected = append(selected, InsertLimitedScansWithPlan(r.c, r.plan, ts0, p.I, p.D1, cfg))
		}
		span.End()
		o.Counter("checkpoint_resumes_total").Inc()
		o.Emit(obs.Event{Kind: obs.KindResumed, Circuit: r.c.Name, I: snap.Iteration, Detected: running})
		ckw.last = snap
	}
	detectable := res.TotalFaults - res.Untestable
	o.Gauge("campaign_faults_detectable").Set(float64(detectable))

	remaining := func() int {
		return len(fs.Remaining())
	}

	// Steps 3-6: iterate I; for each I sweep the D1 schedule. The
	// no-improvement cutoff lives in the loop condition (nSame only
	// changes at iteration boundaries, so this is the same break the
	// classic loop takes — and it lets a resumed run that was already
	// finished fall straight through to the report).
	//
	// The whole loop is one "search" phase span: procedure1/fault_sim
	// below use the quiet Accumulate path (they run thousands of times),
	// so this span is what gives the dominant cost a StartPhase bracket —
	// and with it a profile capture when a PhaseHook is attached. The
	// endSearch closure ends it exactly once whichever exit path runs,
	// including the error returns inside the loop (via the defer).
	searchSpan := o.StartPhase("search")
	searchEnded := false
	endSearch := func() {
		if !searchEnded {
			searchEnded = true
			searchSpan.End()
		}
	}
	defer endSearch()
	for iter := startIter; remaining() > 0 && iter <= cfg.MaxIterations && nSame < cfg.NSameFC; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, ckw.interrupt(err)
		}
		res.Iterations = iter
		improved := false
		for _, d1 := range cfg.D1Order {
			if remaining() == 0 {
				break
			}
			var t0 time.Time
			if o != nil {
				t0 = time.Now()
			}
			ts := InsertLimitedScansWithPlan(r.c, r.plan, ts0, iter, d1, cfg)
			if o != nil {
				o.Accumulate("procedure1", time.Since(t0))
				t0 = time.Now()
			}
			st, err := r.runSession(ctx, cfg, SessionRef{I: iter, D1: d1}, ts, fs, o)
			if o != nil {
				o.Accumulate("fault_sim", time.Since(t0))
			}
			if err != nil {
				if ctx.Err() != nil {
					return nil, ckw.interrupt(ctx.Err())
				}
				if errs.Is(err, errs.InternalPanic) {
					// A contained simulator panic aborts the campaign, but
					// the last completed iteration boundary is still good:
					// flush it so -resume can pick up there.
					_ = ckw.flush()
				}
				return nil, err
			}
			o.Counter("campaign_pairs_tried_total").Inc()
			o.Emit(obs.Event{
				Kind: obs.KindPairTried, I: iter, D1: d1,
				Detected: st.Detected, Cycles: st.Cycles, Remaining: remaining(),
			})
			if st.Detected > 0 {
				res.Pairs = append(res.Pairs, PairResult{
					I: iter, D1: d1, Detected: st.Detected, Cycles: st.Cycles,
				})
				res.TotalCycles += st.Cycles
				selected = append(selected, ts)
				improved = true
				running += st.Detected
				o.Counter("campaign_pairs_selected_total").Inc()
				o.Counter("campaign_cycles_total").Add(st.Cycles)
				o.Counter("campaign_detected_total").Add(int64(st.Detected))
				o.Emit(obs.Event{
					Kind: obs.KindPairSelected, I: iter, D1: d1,
					Detected: st.Detected, Cycles: st.Cycles,
				})
				if detectable > 0 {
					cov := float64(running) / float64(detectable)
					res.Curve = append(res.Curve, CoveragePoint{
						I: iter, D1: d1, Detected: running,
						Cycles: res.TotalCycles, Coverage: cov,
					})
					o.Emit(obs.Event{
						Kind: obs.KindCoverage, Detected: running, Cycles: res.TotalCycles,
						Coverage: cov,
					})
				}
			}
		}
		o.Counter("campaign_iterations_total").Inc()
		o.Emit(obs.Event{
			Kind: obs.KindIteration, I: iter,
			Detected: running, Remaining: remaining(),
		})
		if improved {
			nSame = 0
		} else {
			nSame++
		}
		if err := ckw.boundary(r, cfg, res, fs, nSame, false); err != nil {
			return nil, err
		}
	}

	endSearch()

	res.Detected = fs.Count(fault.Detected)
	res.Aborted = fs.Count(fault.Aborted) // aborts that also evaded detection
	res.Complete = fs.Count(fault.Undetected) == 0
	res.AvgLS = scan.AverageLS(selected)
	o.Gauge("campaign_coverage").Set(res.Coverage())
	o.Gauge("campaign_ls_avg").Set(res.AvgLS)
	o.Emit(obs.Event{
		Kind: obs.KindCampaignEnd, Circuit: r.c.Name,
		Detected: res.Detected, Cycles: res.TotalCycles, Coverage: res.Coverage(),
	})
	// Leave the checkpoint file holding the final state: resuming a
	// finished campaign reproduces its report without redoing work.
	if err := ckw.boundary(r, cfg, res, fs, nSame, true); err != nil {
		return nil, err
	}
	res.CheckpointDegraded = ckw.degraded
	return res, nil
}
