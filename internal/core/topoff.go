package core

import (
	"fmt"

	"limscan/internal/atpg"
	"limscan/internal/fault"
	"limscan/internal/fsim"
	"limscan/internal/logic"
	"limscan/internal/obs"
	"limscan/internal/scan"
)

// TopOffResult summarizes a deterministic top-off pass.
type TopOffResult struct {
	// Tests are the generated deterministic tests, one per targeted
	// fault that PODEM proved testable (fault dropping applies: a test
	// is only emitted for faults still undetected when their turn comes).
	Tests []scan.Test
	// Detected counts faults the top-off tests newly detected.
	Detected int
	// Cycles is the clock-cycle cost of applying the top-off session.
	Cycles int64
	// Proven counts faults newly proven untestable during the pass.
	Proven int
}

// TopOff complements a random campaign with deterministic tests: for
// every fault still undetected in fs, PODEM generates a test cube, the
// cube is concretized into a one-vector scan test, and the accumulated
// tests are fault-simulated (detecting, along the way, other faults and
// dropping them before their turn). It requires the full-scan plan — the
// cubes assume every state bit is controllable.
//
// The paper leaves deterministic top-off outside its scope (its goal is
// a pure random-pattern generator); this is the standard engineering
// fallback when a fault's random detection probability is impractically
// small.
func (r *Runner) TopOff(fs *fault.Set) (*TopOffResult, error) {
	if !r.plan.IsFull() {
		return nil, fmt.Errorf("core: top-off requires full scan (cubes set every state bit)")
	}
	span := r.obs.StartPhase("topoff")
	res := &TopOffResult{}
	for _, i := range fs.Remaining() {
		if fs.State[i] != fault.Undetected && fs.State[i] != fault.Aborted {
			continue
		}
		f := fs.Faults[i]
		v, ok := r.verdicts[f]
		var cube atpg.TestCube
		if !ok || v == atpg.Testable {
			v, cube = r.eng.Generate(f)
			r.verdicts[f] = v
		} else {
			continue
		}
		switch v {
		case atpg.Untestable:
			fs.State[i] = fault.Untestable
			res.Proven++
			continue
		case atpg.Aborted:
			fs.State[i] = fault.Aborted
			continue
		}
		pi, si := cube.Concretize(0)
		tt := scan.Test{SI: si, T: []logic.Vec{pi}}
		// Simulate immediately so fault dropping prunes later targets.
		st, err := r.sim.Run([]scan.Test{tt}, fs, fsim.Options{Obs: r.obs, Workers: r.workers, Mode: r.mode, Trace: r.tracer})
		if err != nil {
			return nil, err
		}
		res.Tests = append(res.Tests, tt)
		res.Detected += st.Detected
	}
	// Cost the top-off as one session (scan-out of each test overlaps the
	// next scan-in), not as the sum of the isolated simulations above.
	res.Cycles = scan.CostModel{NSV: r.plan.Len()}.SessionCycles(res.Tests)
	span.End()
	r.obs.Counter("topoff_tests_total").Add(int64(len(res.Tests)))
	r.obs.Counter("topoff_detected_total").Add(int64(res.Detected))
	r.obs.Counter("topoff_proven_total").Add(int64(res.Proven))
	r.obs.Counter("topoff_cycles_total").Add(res.Cycles)
	r.obs.Emit(obs.Event{
		Kind: obs.KindTopOff, N: len(res.Tests),
		Detected: res.Detected, Cycles: res.Cycles,
	})
	return res, nil
}

// TopOffTransitions is the transition-fault counterpart of TopOff: the
// two-frame PODEM engine generates launch-on-capture pairs (scan-in,
// V0, V1) for transition faults still undetected in fs. Verdicts for
// transition faults are never Untestable (the two-frame model cannot
// prove sequential redundancy), so unresolved faults stay Aborted.
func (r *Runner) TopOffTransitions(fs *fault.Set) (*TopOffResult, error) {
	if !r.plan.IsFull() {
		return nil, fmt.Errorf("core: top-off requires full scan (cubes set every state bit)")
	}
	if r.trans == nil {
		te, err := atpg.NewTransEngine(r.c)
		if err != nil {
			return nil, err
		}
		r.trans = te
	}
	res := &TopOffResult{}
	for _, i := range fs.Remaining() {
		f := fs.Faults[i]
		if f.Model == fault.StuckAt {
			continue
		}
		v, cube := r.trans.Generate(f)
		if v != atpg.Testable {
			fs.State[i] = fault.Aborted
			continue
		}
		state, v0, v1 := cube.Concretize(0)
		tt := scan.Test{SI: state, T: []logic.Vec{v0, v1}}
		st, err := r.sim.Run([]scan.Test{tt}, fs, fsim.Options{Obs: r.obs, Workers: r.workers, Mode: r.mode, Trace: r.tracer})
		if err != nil {
			return nil, err
		}
		res.Tests = append(res.Tests, tt)
		res.Detected += st.Detected
	}
	res.Cycles = scan.CostModel{NSV: r.plan.Len()}.SessionCycles(res.Tests)
	return res, nil
}
