package core

import (
	"context"
	"fmt"
	"time"

	"limscan/internal/checkpoint"
	"limscan/internal/circuit"
	"limscan/internal/errs"
	"limscan/internal/fault"
	"limscan/internal/iofault"
	"limscan/internal/obs"
	"limscan/internal/trace"
)

// CheckpointOptions controls periodic campaign snapshotting during
// RunWithContext / ResumeWithContext.
type CheckpointOptions struct {
	// Path is the snapshot file. It is rewritten atomically (write-temp,
	// fsync, rename), so it always holds the latest complete snapshot.
	Path string
	// Every writes a snapshot after every Every-th completed iteration.
	// Zero means 1 (every iteration). The snapshot after the TS0 phase
	// and the final snapshot at campaign end are always written, and a
	// context cancellation flushes the last iteration boundary
	// regardless of cadence.
	Every int
	// FS routes the snapshot I/O; nil means the real filesystem. Chaos
	// tests substitute an iofault.Injector here.
	FS iofault.FS
	// Retry overrides the transient-failure retry policy for snapshot
	// writes; nil means the iofault defaults (4 attempts, capped
	// exponential backoff).
	Retry *iofault.Retry
}

// InterruptedError is the error RunWithContext returns on cancellation:
// the campaign state as of the reported iteration is in the checkpoint
// at Path. It is an alias of checkpoint.InterruptedError so the CLIs
// can match either a runner or a simulator interruption with one
// errors.As.
type InterruptedError = checkpoint.InterruptedError

// CheckpointMeta returns the identity block a Procedure 2 snapshot for
// this runner and configuration carries: the structural circuit hash,
// the scan plan length, and every result-affecting parameter. Workers,
// Observer and Mode are deliberately excluded — they change how fast a
// campaign runs, never what it computes (the two fault-simulation modes
// are byte-identical), so a checkpoint taken under one may be resumed
// under another.
func (r *Runner) CheckpointMeta(cfg Config) checkpoint.Meta {
	return metaFor(r.c, r.plan.Len(), cfg)
}

// metaFor is the shared identity constructor behind CheckpointMeta and
// JobParamsHash.
func metaFor(c *circuit.Circuit, planLen int, cfg Config) checkpoint.Meta {
	cfg = cfg.withDefaults()
	return checkpoint.Meta{
		Mode:          checkpoint.ModeProcedure2,
		Circuit:       c.Name,
		CircuitHash:   checkpoint.CircuitHash(c),
		PlanLen:       planLen,
		LA:            cfg.LA,
		LB:            cfg.LB,
		N:             cfg.N,
		Seed:          cfg.Seed,
		D1Order:       cfg.D1Order,
		NSameFC:       cfg.NSameFC,
		MaxIterations: cfg.MaxIterations,
		ReseedPerTest: cfg.ReseedPerTest,
		UseLFSR:       cfg.UseLFSR,
		LFSRDegree:    cfg.LFSRDegree,
	}
}

// ParamsHash digests every result-affecting parameter of a campaign
// into a short hex string — the run-identity key the performance ledger
// records, so `perf diff` can tell "same work, different speed" apart
// from "different work". It is the checkpoint Meta hash: the two
// subsystems agreeing on one identity means a ledger record and a
// checkpoint from the same run are cross-referencable.
func (r *Runner) ParamsHash(cfg Config) string {
	return r.CheckpointMeta(cfg).Hash()
}

// snapshot captures the campaign state at an iteration boundary. The
// fault set is copied bit-packed; everything else is already scalar.
func (r *Runner) snapshot(cfg Config, res *Result, fs *fault.Set, nSame int) *checkpoint.Snapshot {
	s := &checkpoint.Snapshot{
		Version:         checkpoint.Version,
		Meta:            r.CheckpointMeta(cfg),
		Iteration:       res.Iterations,
		NSame:           nSame,
		InitialDetected: res.InitialDetected,
		InitialCycles:   res.InitialCycles,
		TotalCycles:     res.TotalCycles,
		Untestable:      res.Untestable,
		NumFaults:       len(fs.State),
		States:          checkpoint.EncodeStates(fs.State),
	}
	for _, p := range res.Pairs {
		s.Pairs = append(s.Pairs, checkpoint.Pair{I: p.I, D1: p.D1, Detected: p.Detected, Cycles: p.Cycles})
	}
	for _, cp := range res.Curve {
		s.Curve = append(s.Curve, checkpoint.CurvePoint{
			I: cp.I, D1: cp.D1, Detected: cp.Detected, Cycles: cp.Cycles, Coverage: cp.Coverage,
		})
	}
	return s
}

// restore rebuilds the in-flight campaign state of a run from a
// snapshot: fault statuses, selected pairs, curve points, accumulated
// totals. It returns the running detection count and the nSame counter.
func restore(snap *checkpoint.Snapshot, res *Result, fs *fault.Set) (running, nSame int, err error) {
	states, err := checkpoint.DecodeStates(snap.States, snap.NumFaults)
	if err != nil {
		return 0, 0, err
	}
	if len(states) != len(fs.State) {
		return 0, 0, fmt.Errorf("core: snapshot holds %d faults, circuit has %d", len(states), len(fs.State))
	}
	copy(fs.State, states)
	res.InitialDetected = snap.InitialDetected
	res.InitialCycles = snap.InitialCycles
	res.TotalCycles = snap.TotalCycles
	res.Untestable = snap.Untestable
	res.Iterations = snap.Iteration
	running = snap.InitialDetected
	for _, p := range snap.Pairs {
		res.Pairs = append(res.Pairs, PairResult{I: p.I, D1: p.D1, Detected: p.Detected, Cycles: p.Cycles})
		running += p.Detected
	}
	for _, cp := range snap.Curve {
		res.Curve = append(res.Curve, CoveragePoint{
			I: cp.I, D1: cp.D1, Detected: cp.Detected, Cycles: cp.Cycles, Coverage: cp.Coverage,
		})
	}
	return running, snap.NSame, nil
}

// checkpointWriter bundles the write-side bookkeeping of a run: cadence,
// metrics, the checkpoint event, and the degraded-mode state machine.
//
// Degraded mode: a snapshot write that still fails after the retry
// policy's budget does NOT abort the campaign. Checkpointing is purely
// observational — Procedure 2's greedy accumulation never reads the
// snapshot back — so losing a boundary costs only resume granularity,
// never correctness. The writer raises the checkpoint_degraded gauge,
// counts the failure, emits a loud event, and simply tries again at the
// next boundary; a later success clears the state. Only a campaign that
// ends with its final snapshot unwritten reports degraded completion.
type checkpointWriter struct {
	opts *CheckpointOptions
	o    *obs.Campaign
	// tr, when set, records a checkpoint_write span around every disk
	// write — checkpoint I/O is serial time the trace diagnoser charges
	// against scaling.
	tr *trace.Recorder
	// last is the most recent iteration-boundary snapshot, whether or
	// not the cadence wrote it; a cancellation flushes it.
	last *checkpoint.Snapshot
	// iteration mirrors the last completed iteration even when
	// checkpointing is disabled (for the InterruptedError report).
	iteration int
	// degraded is set while the most recent write attempt exhausted its
	// retries; failures counts the consecutive failed boundaries.
	degraded bool
	failures int
	// wroteIter is the iteration of the last snapshot that actually
	// reached disk (-1 before any write) — what an interruption during
	// degraded mode can truthfully report.
	wroteIter int
}

// enabled reports whether boundary snapshots are being collected.
func (w *checkpointWriter) enabled() bool {
	return w.opts != nil && w.opts.Path != ""
}

// boundary records an iteration boundary: when checkpointing is enabled
// it captures a snapshot and writes it per the cadence (force bypasses
// the cadence); otherwise it only tracks the iteration number.
func (w *checkpointWriter) boundary(r *Runner, cfg Config, res *Result, fs *fault.Set, nSame int, force bool) error {
	w.iteration = res.Iterations
	if !w.enabled() {
		return nil
	}
	return w.note(r.snapshot(cfg, res, fs, nSame), force)
}

// every resolves the write cadence.
func (w *checkpointWriter) every() int {
	if w.opts == nil || w.opts.Every < 1 {
		return 1
	}
	return w.opts.Every
}

// note records a fresh boundary snapshot and writes it when the cadence
// says so (or when force is set — the TS0 boundary and the final state).
func (w *checkpointWriter) note(s *checkpoint.Snapshot, force bool) error {
	w.last = s
	if w.opts == nil || w.opts.Path == "" {
		return nil
	}
	if !force && s.Iteration%w.every() != 0 {
		return nil
	}
	return w.flush()
}

// flush writes the last noted snapshot unconditionally. An I/O failure
// that survived the retry policy degrades the writer instead of failing
// the campaign; only a snapshot that cannot be encoded (a bug) is
// returned as an error.
func (w *checkpointWriter) flush() error {
	if w.opts == nil || w.opts.Path == "" || w.last == nil {
		return nil
	}
	t0 := time.Now()
	n, err := checkpoint.SaveFS(w.opts.FS, w.opts.Path, w.last, w.opts.Retry)
	if w.tr != nil {
		w.tr.Track(trace.MainTrack).Add(trace.CatCheckpoint, trace.SpanCheckpoint,
			w.tr.Rel(t0), time.Since(t0), trace.KV{K: "bytes", V: int64(n)})
	}
	if err != nil {
		if errs.Is(err, errs.TransientIO) {
			w.degrade(err)
			return nil
		}
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if w.degraded {
		w.degraded = false
		w.failures = 0
		w.o.Gauge("checkpoint_degraded").Set(0)
		w.o.Emit(obs.Event{Kind: obs.KindWarning,
			Msg: fmt.Sprintf("checkpoint writes recovered at iteration %d; snapshot is fresh again", w.last.Iteration)})
	}
	w.wroteIter = w.last.Iteration
	w.o.Counter("checkpoint_writes_total").Inc()
	w.o.Histogram("checkpoint_bytes", 1<<10, 1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<22).Observe(float64(n))
	w.o.Histogram("checkpoint_write_seconds").Observe(time.Since(t0).Seconds())
	w.o.Emit(obs.Event{Kind: obs.KindCheckpoint, I: w.last.Iteration, N: n})
	return nil
}

// degrade records one exhausted-retries write failure and keeps the
// campaign running.
func (w *checkpointWriter) degrade(err error) {
	w.degraded = true
	w.failures++
	w.o.Counter("checkpoint_write_failures_total").Inc()
	w.o.Gauge("checkpoint_degraded").Set(1)
	w.o.Emit(obs.Event{Kind: obs.KindDegraded, N: w.failures,
		Msg: fmt.Sprintf("checkpoint write failed after retries (campaign continues; on-disk snapshot is stale): %v", err)})
}

// interrupt flushes the last boundary snapshot and wraps the context
// error. The flushed state is the last *completed* iteration: work from
// a partially executed iteration is discarded, and a resumed run redoes
// that iteration from its start — which, being a pure function of the
// restored fault set and (Seed, I), reproduces it exactly.
func (w *checkpointWriter) interrupt(cause error) error {
	_ = w.flush()
	ie := &InterruptedError{Iteration: w.iteration, Err: cause}
	if w.last != nil {
		ie.Iteration = w.last.Iteration
	}
	if w.degraded && w.wroteIter >= 0 {
		// The flush above failed too: the file still holds the older
		// snapshot, so report the iteration that is actually on disk.
		ie.Iteration = w.wroteIter
	}
	if w.opts != nil {
		ie.Path = w.opts.Path
	}
	return ie
}

// RunWithContext is RunProcedure2 with cooperative cancellation and
// optional checkpointing: ctx is polled at every iteration and pair
// boundary (and between fault batches inside the simulator), and a
// non-nil ck writes periodic snapshots that ResumeWithContext can
// continue from. On cancellation the last completed iteration is
// flushed to ck.Path and an *InterruptedError is returned.
func (r *Runner) RunWithContext(ctx context.Context, cfg Config, ck *CheckpointOptions) (*Result, error) {
	return r.run(ctx, cfg, ck, nil)
}

// ResumeWithContext continues a campaign from a snapshot produced by
// RunWithContext on an equivalent runner and configuration. The
// snapshot's identity hash must match this run's circuit, scan plan and
// parameters exactly; a mismatch is an error, never a wrong-answer run.
// The result is identical to what the uninterrupted run would have
// produced (see TestResumeEquivalence*).
func (r *Runner) ResumeWithContext(ctx context.Context, cfg Config, snap *checkpoint.Snapshot, ck *CheckpointOptions) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if err := snap.CheckMeta(r.CheckpointMeta(cfg)); err != nil {
		return nil, err
	}
	return r.run(ctx, cfg, ck, snap)
}
