package core

import (
	"testing"

	"limscan/internal/bmark"
	"limscan/internal/fault"
	"limscan/internal/fsim"
	"limscan/internal/obs"
)

// TestRunProcedure2Observed is the observability smoke test: a full
// campaign against a collector sink must produce a well-ordered event
// stream and a metrics registry that agrees with the returned Result.
func TestRunProcedure2Observed(t *testing.T) {
	c, err := bmark.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	o := obs.New(nil, col)
	r := NewRunner(c)
	r.SetObserver(o)
	res, err := r.RunProcedure2(Config{LA: 8, LB: 16, N: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	if events[0].Kind != obs.KindCampaignStart {
		t.Errorf("first event = %s, want campaign_start", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != obs.KindCampaignEnd {
		t.Errorf("last event = %s, want campaign_end", last.Kind)
	}
	if last.Detected != res.Detected || last.Cycles != res.TotalCycles {
		t.Errorf("campaign_end (%d detected, %d cycles) disagrees with Result (%d, %d)",
			last.Detected, last.Cycles, res.Detected, res.TotalCycles)
	}

	// Ordering: campaign_start, then phases/iterations with pair events
	// in between, then campaign_end; iteration numbers never decrease,
	// pair events sit inside the iteration that produced them.
	var pairs, iterations int
	lastIter := 0
	for i, e := range events {
		switch e.Kind {
		case obs.KindCampaignStart:
			if i != 0 {
				t.Errorf("campaign_start at position %d", i)
			}
		case obs.KindCampaignEnd:
			if i != len(events)-1 {
				t.Errorf("campaign_end at position %d of %d", i, len(events))
			}
		case obs.KindIteration:
			iterations++
			if e.I != lastIter+1 {
				t.Errorf("iteration %d follows iteration %d", e.I, lastIter)
			}
			lastIter = e.I
		case obs.KindPairSelected, obs.KindPairTried:
			pairs++
			if e.I != lastIter+1 {
				t.Errorf("%s for I=%d emitted outside iteration %d", e.Kind, e.I, lastIter+1)
			}
		}
	}
	if iterations != res.Iterations {
		t.Errorf("iteration events = %d, want %d", iterations, res.Iterations)
	}
	var selected []obs.Event
	for _, e := range events {
		if e.Kind == obs.KindPairSelected {
			selected = append(selected, e)
		}
	}
	if len(selected) != len(res.Pairs) {
		t.Fatalf("pair_selected events = %d, want %d", len(selected), len(res.Pairs))
	}
	for i, p := range res.Pairs {
		e := selected[i]
		if e.I != p.I || e.D1 != p.D1 || e.Detected != p.Detected || e.Cycles != p.Cycles {
			t.Errorf("pair %d event %+v disagrees with result %+v", i, e, p)
		}
	}

	// Counters mirror the Result exactly.
	reg := o.Metrics()
	checks := []struct {
		name string
		want int64
	}{
		{"campaign_cycles_total", res.TotalCycles},
		{"campaign_detected_total", int64(res.Detected)},
		{"campaign_pairs_selected_total", int64(len(res.Pairs))},
		{"campaign_iterations_total", int64(res.Iterations)},
		{"campaign_untestable_total", int64(res.Untestable)},
		{"campaign_runs_total", 1},
		{"fsim_detected_total", int64(res.Detected)},
	}
	for _, ck := range checks {
		if got := reg.Counter(ck.name).Value(); got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, got, ck.want)
		}
	}
	if got := reg.Gauge("campaign_coverage").Value(); got != res.Coverage() {
		t.Errorf("campaign_coverage = %g, want %g", got, res.Coverage())
	}

	// Detection-site attribution covers every detection exactly once.
	siteSum := reg.Counter("fsim_detected_po_total").Value() +
		reg.Counter("fsim_detected_limited_scan_total").Value() +
		reg.Counter("fsim_detected_scan_out_total").Value()
	if siteSum != int64(res.Detected) {
		t.Errorf("site counters sum to %d, want %d", siteSum, res.Detected)
	}

	// The phase breakdown saw every phase of the flow.
	phases := map[string]bool{}
	for _, p := range o.PhaseSummary() {
		phases[p.Name] = true
	}
	for _, want := range []string{"ts0_gen", "ts0_sim", "classify", "procedure1", "fault_sim"} {
		if !phases[want] {
			t.Errorf("phase %q missing from summary %v", want, phases)
		}
	}
}

// TestRunProcedure2Unobserved pins the nil-observer contract: identical
// results, no events, no panics.
func TestRunProcedure2Unobserved(t *testing.T) {
	c, err := bmark.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LA: 8, LB: 16, N: 64, Seed: 1}
	plain, err := NewRunner(c).RunProcedure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(c)
	r.SetObserver(obs.New(nil, nil))
	observed, err := r.RunProcedure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Detected != observed.Detected || plain.TotalCycles != observed.TotalCycles ||
		len(plain.Pairs) != len(observed.Pairs) {
		t.Errorf("observation changed the campaign: %+v vs %+v", plain, observed)
	}
}

// TestLFSRFallbackIsLoud: an invalid LFSR degree must not silently
// degrade to SplitMix — the observer hears about it.
func TestLFSRFallbackIsLoud(t *testing.T) {
	c, err := bmark.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	o := obs.New(nil, col)
	cfg := Config{LA: 4, LB: 8, N: 4, Seed: 1, UseLFSR: true, LFSRDegree: 2, Observer: o}

	// Validate rejects the configuration up front...
	if err := cfg.Validate(); err == nil {
		t.Error("Validate must reject LFSRDegree 2")
	}
	// ...and the generation path, which cannot return an error, records
	// the fallback instead of hiding it.
	if ts := GenerateTS0(c, cfg); len(ts) == 0 {
		t.Fatal("no tests generated")
	}
	if got := o.Counter("rng_lfsr_fallback_total").Value(); got == 0 {
		t.Error("fallback counter not bumped")
	}
	var warned bool
	for _, e := range col.Events() {
		if e.Kind == obs.KindWarning {
			warned = true
		}
	}
	if !warned {
		t.Error("no warning event for the LFSR fallback")
	}

	// A valid degree must not warn.
	col2 := &obs.Collector{}
	o2 := obs.New(nil, col2)
	good := Config{LA: 4, LB: 8, N: 4, Seed: 1, UseLFSR: true, LFSRDegree: 16, Observer: o2}
	GenerateTS0(c, good)
	if got := o2.Counter("rng_lfsr_fallback_total").Value(); got != 0 {
		t.Errorf("valid degree bumped the fallback counter %d times", got)
	}
}

// TestFsimSiteAttribution checks the per-site split on a session that
// has all three observation channels active.
func TestFsimSiteAttribution(t *testing.T) {
	c, err := bmark.Load("s420")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LA: 8, LB: 16, N: 32, Seed: 7}
	ts0 := GenerateTS0(c, cfg)
	ts := InsertLimitedScans(c, ts0, 1, 2, cfg)

	o := obs.New(nil, nil)
	reps, _ := fault.Collapse(c, fault.Universe(c))
	fs := fault.NewSet(reps)
	st, err := fsim.New(c).Run(ts, fs, fsim.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.DetectedAtPO + st.DetectedAtLimitedScan + st.DetectedAtScanOut
	if sum != st.Detected {
		t.Errorf("site split %d+%d+%d = %d, want %d", st.DetectedAtPO,
			st.DetectedAtLimitedScan, st.DetectedAtScanOut, sum, st.Detected)
	}
	if st.Detected == 0 {
		t.Fatal("session detected nothing")
	}

	// Without an observer the split is not computed.
	fs2 := fault.NewSet(reps)
	st2, err := fsim.New(c).Run(ts, fs2, fsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.DetectedAtPO != 0 || st2.DetectedAtLimitedScan != 0 || st2.DetectedAtScanOut != 0 {
		t.Error("site attribution must stay zero on the nil-observer path")
	}
	if st2.Detected != st.Detected {
		t.Errorf("observation changed detections: %d vs %d", st2.Detected, st.Detected)
	}
}
