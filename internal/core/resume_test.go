package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"limscan/internal/bmark"
	"limscan/internal/checkpoint"
	"limscan/internal/circuit"
	"limscan/internal/fsim"
	"limscan/internal/obs"
)

// sinkFunc adapts a function to obs.Sink for cancel-on-event tests.
type sinkFunc func(obs.Event)

func (f sinkFunc) OnEvent(e obs.Event) { f(e) }

// resumeCircuits are the campaign-equivalence targets: small enough that
// ATPG classification (the dominant cost) stays in the tens of
// milliseconds, diverse enough to cover different iteration counts.
func resumeCircuits(t *testing.T) []string {
	if testing.Short() {
		return []string{"s27", "s298"}
	}
	return []string{"s27", "s208", "s298", "s344", "s382", "s510"}
}

func resumeConfig(seed uint64) Config {
	return Config{LA: 10, LB: 5, N: 2, Seed: seed, ReseedPerTest: true}
}

func loadBmark(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	c, err := bmark.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sameResult compares every result field the report is built from,
// including the full pair and curve sequences.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if resultKey(got) != resultKey(want) {
		t.Errorf("%s: result %+v, want %+v", label, resultKey(got), resultKey(want))
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Errorf("%s: pair %d = %+v, want %+v", label, i, got.Pairs[i], want.Pairs[i])
		}
	}
	if len(got.Curve) != len(want.Curve) {
		t.Fatalf("%s: %d curve points, want %d", label, len(got.Curve), len(want.Curve))
	}
	for i := range got.Curve {
		if got.Curve[i] != want.Curve[i] {
			t.Errorf("%s: curve %d = %+v, want %+v", label, i, got.Curve[i], want.Curve[i])
		}
	}
}

// TestResumeEquivalenceChain is the tentpole's headline gate: a campaign
// interrupted at EVERY iteration boundary in turn — each interruption
// and resume happening in a fresh "process" (fresh Runner, so no verdict
// cache or simulator state can leak across the kill) — must converge to
// exactly the result of the uninterrupted run: same pairs in the same
// order, same coverage curve, same cycle totals, same completeness.
//
// The chain construction interrupts after each checkpoint write, so
// every boundary the campaign ever reaches is exercised as a resume
// point, not a sampled subset.
func TestResumeEquivalenceChain(t *testing.T) {
	for _, name := range resumeCircuits(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := loadBmark(t, name)
			spec, _ := bmark.Info(name)
			cfg := resumeConfig(spec.Seed)

			// Uninterrupted reference, with checkpointing on so the write
			// path itself is part of the straight run too.
			straightPath := filepath.Join(t.TempDir(), "ck.json")
			want, err := NewRunner(c).RunWithContext(context.Background(), cfg,
				&CheckpointOptions{Path: straightPath})
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "ck.json")
			ck := &CheckpointOptions{Path: path}
			var snap *checkpoint.Snapshot
			var got *Result
			maxHops := want.Iterations + 4
			hops := 0
			for ; hops < maxHops; hops++ {
				ctx, cancel := context.WithCancel(context.Background())
				o := obs.New(nil, sinkFunc(func(e obs.Event) {
					if e.Kind == obs.KindCheckpoint {
						cancel()
					}
				}))
				cfgHop := cfg
				cfgHop.Observer = o
				r := NewRunner(c) // fresh process: empty verdict cache
				var res *Result
				if snap == nil {
					res, err = r.RunWithContext(ctx, cfgHop, ck)
				} else {
					res, err = r.ResumeWithContext(ctx, cfgHop, snap, ck)
				}
				cancel()
				if err == nil {
					got = res
					break
				}
				var ie *InterruptedError
				if !errors.As(err, &ie) {
					t.Fatalf("hop %d: %v", hops, err)
				}
				if ie.Path != path {
					t.Fatalf("hop %d: InterruptedError.Path = %q, want %q", hops, ie.Path, path)
				}
				snap, err = checkpoint.Load(path)
				if err != nil {
					t.Fatalf("hop %d: reload: %v", hops, err)
				}
			}
			if got == nil {
				t.Fatalf("campaign never completed in %d hops", maxHops)
			}
			if hops == 0 {
				t.Fatal("campaign was never interrupted; cancel-after-checkpoint hook is dead")
			}
			sameResult(t, "chained", got, want)

			// The final checkpoints of both runs must decode to the same
			// state.
			a, err := checkpoint.Load(straightPath)
			if err != nil {
				t.Fatal(err)
			}
			b, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if a.Iteration != b.Iteration || a.States != b.States || len(a.Pairs) != len(b.Pairs) {
				t.Errorf("final checkpoints diverge: %+v vs %+v", a, b)
			}
		})
	}
}

// TestResumeOfFinishedCampaign: resuming from the final snapshot redoes
// no iterations and reproduces the report — which is what makes an e2e
// kill that lands after the campaign finished harmless.
func TestResumeOfFinishedCampaign(t *testing.T) {
	c := loadBmark(t, "s298")
	spec, _ := bmark.Info("s298")
	cfg := resumeConfig(spec.Seed)
	path := filepath.Join(t.TempDir(), "ck.json")
	want, err := NewRunner(c).RunWithContext(context.Background(), cfg, &CheckpointOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(c).ResumeWithContext(context.Background(), cfg, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "finished-resume", got, want)
}

// TestResumeMetaMismatch: a snapshot must be refused — loudly, before
// any simulation — when the circuit, scan plan or any result-affecting
// parameter changed.
func TestResumeMetaMismatch(t *testing.T) {
	c := loadBmark(t, "s27")
	spec, _ := bmark.Info("s27")
	cfg := resumeConfig(spec.Seed)
	path := filepath.Join(t.TempDir(), "ck.json")
	if _, err := NewRunner(c).RunWithContext(context.Background(), cfg, &CheckpointOptions{Path: path}); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewRunner(c).ResumeWithContext(context.Background(), cfg, nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}

	other := loadBmark(t, "s344")
	if _, err := NewRunner(other).ResumeWithContext(context.Background(), cfg, snap, nil); err == nil {
		t.Error("snapshot for s27 accepted by s344 runner")
	}

	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.LA++ },
		func(c *Config) { c.N++ },
		func(c *Config) { c.D1Order = []int{3, 1} },
		func(c *Config) { c.ReseedPerTest = !c.ReseedPerTest },
		func(c *Config) { c.UseLFSR = true },
	} {
		bad := cfg
		mutate(&bad)
		if _, err := NewRunner(c).ResumeWithContext(context.Background(), bad, snap, nil); err == nil {
			t.Errorf("snapshot accepted under changed config %+v", bad)
		}
	}

	// Observer, Workers and Mode are execution knobs, not identity:
	// changing them must NOT invalidate the snapshot.
	ok := cfg
	ok.Workers = 2
	ok.Observer = obs.New(nil, nil)
	ok.Mode = fsim.PatternParallel
	if _, err := NewRunner(c).ResumeWithContext(context.Background(), ok, snap, nil); err != nil {
		t.Errorf("snapshot rejected for changed Workers/Observer/Mode: %v", err)
	}
}

// TestCampaignModeInvariant is the campaign-level mode differential: a
// full Procedure 2 run under the pattern-parallel fault simulator must
// produce the identical Result — every pair, curve point, cycle total
// and completeness flag — as the fault-parallel default.
func TestCampaignModeInvariant(t *testing.T) {
	for _, name := range resumeCircuits(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := loadBmark(t, name)
			spec, _ := bmark.Info(name)
			cfg := resumeConfig(spec.Seed)
			want, err := NewRunner(c).RunProcedure2(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pp := cfg
			pp.Mode = fsim.PatternParallel
			got, err := NewRunner(c).RunProcedure2(pp)
			if err != nil {
				t.Fatal(err)
			}
			// Results carry their Config; neutralize the knob before the
			// field-by-field comparison.
			got.Config.Mode = fsim.FaultParallel
			sameResult(t, "pattern-parallel campaign", got, want)
		})
	}
}

// TestResumeCrossMode: a checkpoint written under one fault-simulation
// mode resumes under the other (the snapshot carries no mode — it is an
// execution knob, not identity) and still converges to the
// uninterrupted result.
func TestResumeCrossMode(t *testing.T) {
	c := loadBmark(t, "s298")
	spec, _ := bmark.Info("s298")
	cfg := resumeConfig(spec.Seed)
	want, err := NewRunner(c).RunProcedure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []struct {
		label       string
		first, then fsim.Mode
	}{
		{"pp-then-fp", fsim.PatternParallel, fsim.FaultParallel},
		{"fp-then-pp", fsim.FaultParallel, fsim.PatternParallel},
	} {
		path := filepath.Join(t.TempDir(), "ck.json")
		ctx, cancel := context.WithCancel(context.Background())
		start := cfg
		start.Mode = dir.first
		start.Observer = obs.New(nil, sinkFunc(func(e obs.Event) {
			if e.Kind == obs.KindCheckpoint {
				cancel()
			}
		}))
		_, err := NewRunner(c).RunWithContext(ctx, start, &CheckpointOptions{Path: path})
		cancel()
		var ie *InterruptedError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: err = %v, want *InterruptedError", dir.label, err)
		}
		snap, err := checkpoint.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rest := cfg
		rest.Mode = dir.then
		got, err := NewRunner(c).ResumeWithContext(context.Background(), rest, snap, nil)
		if err != nil {
			t.Fatalf("%s: resume: %v", dir.label, err)
		}
		got.Config.Mode = fsim.FaultParallel
		sameResult(t, dir.label, got, want)
	}
}

// TestRunWithContextUncheckpointed: cancellation without a checkpoint
// configuration still stops the run, with an InterruptedError whose
// empty Path says there is nothing to resume from.
func TestRunWithContextUncheckpointed(t *testing.T) {
	c := loadBmark(t, "s298")
	spec, _ := bmark.Info("s298")
	cfg := resumeConfig(spec.Seed)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner(c).RunWithContext(ctx, cfg, nil)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InterruptedError", err)
	}
	if ie.Path != "" {
		t.Errorf("Path = %q, want empty", ie.Path)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false")
	}
}

// TestRunWithContextMatchesRunProcedure2: with a live context and no
// checkpointing, RunWithContext is RunProcedure2.
func TestRunWithContextMatchesRunProcedure2(t *testing.T) {
	c := loadBmark(t, "s344")
	spec, _ := bmark.Info("s344")
	cfg := resumeConfig(spec.Seed)
	want, err := NewRunner(c).RunProcedure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(c).RunWithContext(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ctx-run", got, want)
}

// TestCheckpointCadence: Every=N writes only every N-th iteration
// boundary (plus the forced TS0 and final snapshots), and the file left
// behind always decodes.
func TestCheckpointCadence(t *testing.T) {
	c := loadBmark(t, "s298")
	spec, _ := bmark.Info("s298")
	cfg := resumeConfig(spec.Seed)
	writes := 0
	cfg.Observer = obs.New(nil, sinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindCheckpoint {
			writes++
		}
	}))
	path := filepath.Join(t.TempDir(), "ck.json")
	res, err := NewRunner(c).RunWithContext(context.Background(), cfg, &CheckpointOptions{Path: path, Every: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Only the forced writes: TS0 and final.
	if writes != 2 {
		t.Errorf("writes = %d, want 2 (TS0 + final) at Every=1000 over %d iterations", writes, res.Iterations)
	}
	if _, err := checkpoint.Load(path); err != nil {
		t.Fatal(err)
	}
}
