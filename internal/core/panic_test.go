package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"limscan/internal/checkpoint"
	"limscan/internal/errs"
	"limscan/internal/fsim"
	"limscan/internal/obs"
)

// TestCampaignPanicFlushesBoundary: a simulator worker panic mid-
// campaign aborts the run with a typed errs.InternalPanic error, but
// the last completed iteration boundary is flushed to the checkpoint
// first — so an operator can fix the bug and -resume instead of paying
// the whole campaign again. The resumed run (fault cleared) must match
// the uninterrupted campaign exactly.
func TestCampaignPanicFlushesBoundary(t *testing.T) {
	c := loadBmark(t, "s298")
	cfg := resumeConfig(5)
	want, err := NewRunner(c).RunWithContext(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Arm the panic hook only after the TS0 boundary snapshot is written,
	// so the panic lands in an iteration's fault simulation and the TS0
	// boundary is the last completed one.
	var armed, sawPanicWarning atomic.Bool
	fsim.PanicHook = func(batch int) {
		if armed.Load() {
			panic("campaign chaos")
		}
	}
	t.Cleanup(func() { fsim.PanicHook = nil })

	path := filepath.Join(t.TempDir(), "ck.json")
	reg := obs.NewRegistry()
	cfgPanic := cfg
	cfgPanic.Observer = obs.New(reg, sinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindCheckpoint {
			armed.Store(true)
		}
		if e.Kind == obs.KindWarning {
			sawPanicWarning.Store(true)
		}
	}))
	_, err = NewRunner(c).RunWithContext(context.Background(), cfgPanic, &CheckpointOptions{Path: path})
	if err == nil {
		t.Fatal("campaign with a panicking simulator returned nil error")
	}
	if !errs.Is(err, errs.InternalPanic) {
		t.Fatalf("error %v does not match errs.InternalPanic", err)
	}
	var pe *errs.PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("campaign panic lost its stack: %v", err)
	}
	if got := errs.ExitCode(err); got != errs.ExitInternal {
		t.Errorf("ExitCode = %d, want %d", got, errs.ExitInternal)
	}
	if got := reg.Counter("fsim_worker_panics_total").Value(); got < 1 {
		t.Errorf("fsim_worker_panics_total = %d, want >= 1", got)
	}
	if !sawPanicWarning.Load() {
		t.Error("no warning event emitted for the contained panic")
	}

	// The TS0 boundary must be on disk despite the abort.
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("no flushed snapshot after panic: %v", err)
	}
	if snap.Iteration != 0 {
		t.Errorf("flushed snapshot at iteration %d, want 0 (TS0 boundary)", snap.Iteration)
	}

	fsim.PanicHook = nil
	got, err := NewRunner(c).ResumeWithContext(context.Background(), cfg, snap, nil)
	if err != nil {
		t.Fatalf("resume after panic: %v", err)
	}
	sameResult(t, "resume-after-panic", got, want)
}
