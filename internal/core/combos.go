package core

import (
	"sort"

	"limscan/internal/scan"
)

// Combo is one (L_A, L_B, N) parameter combination with its TS0 cost.
type Combo struct {
	LA, LB, N int
	Ncyc0     int64
}

// Paper parameter grids (Section 3): L_A in {8..256}, L_B in {16..256},
// N in {64,128,256}, with L_A < L_B.
var (
	paperLA = []int{8, 16, 32, 64, 128, 256}
	paperLB = []int{16, 32, 64, 128, 256}
	paperN  = []int{64, 128, 256}
)

// Combos enumerates the paper's (L_A, L_B, N) grid for a scan chain of
// nsv flip-flops, sorted by increasing N_cyc0 (the Table 5 order), ties
// broken by (N, L_B, L_A) for determinism.
func Combos(nsv int) []Combo {
	m := scan.CostModel{NSV: nsv}
	var out []Combo
	for _, n := range paperN {
		for _, la := range paperLA {
			for _, lb := range paperLB {
				if la >= lb {
					continue
				}
				out = append(out, Combo{LA: la, LB: lb, N: n, Ncyc0: m.Ncyc0(la, lb, n)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ncyc0 != b.Ncyc0 {
			return a.Ncyc0 < b.Ncyc0
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.LB != b.LB {
			return a.LB < b.LB
		}
		return a.LA < b.LA
	})
	return out
}

// CampaignResult is the Table 6 style outcome for one circuit: the result
// of the first combination (in N_cyc0 order) that achieves complete
// coverage of the detectable faults, plus everything tried before it.
type CampaignResult struct {
	Circuit string
	// Chosen is the first complete result (nil if no combination within
	// MaxCombos achieved completeness; then Best is the closest).
	Chosen *Result
	// Best is the result with the highest coverage seen (equal to Chosen
	// when a complete combination exists).
	Best *Result
	// Tried counts the combinations evaluated.
	Tried int
}

// CampaignOptions tunes FirstComplete.
type CampaignOptions struct {
	// Base configures everything except LA/LB/N (seed, D1 order, limits).
	Base Config
	// MaxCombos caps how many combinations are tried, in N_cyc0 order.
	// Zero means 12.
	MaxCombos int
}

// FirstComplete implements the paper's parameter selection: walk the
// (L_A, L_B, N) combinations by increasing N_cyc0 and return the first
// that reaches complete fault coverage (Section 3 / Table 6).
func (r *Runner) FirstComplete(opts CampaignOptions) (*CampaignResult, error) {
	maxCombos := opts.MaxCombos
	if maxCombos == 0 {
		maxCombos = 12
	}
	out := &CampaignResult{Circuit: r.c.Name}
	for _, combo := range Combos(r.plan.Len()) {
		if out.Tried >= maxCombos {
			break
		}
		cfg := opts.Base
		cfg.LA, cfg.LB, cfg.N = combo.LA, combo.LB, combo.N
		res, err := r.RunProcedure2(cfg)
		if err != nil {
			return nil, err
		}
		out.Tried++
		if out.Best == nil || res.Coverage() > out.Best.Coverage() {
			out.Best = res
		}
		if res.Complete {
			out.Chosen = res
			return out, nil
		}
	}
	return out, nil
}
