package core

import (
	"context"
	"fmt"
	"os"

	"limscan/internal/checkpoint"
	"limscan/internal/circuit"
	"limscan/internal/errs"
	"limscan/internal/obs"
	"limscan/internal/scan"
)

// JobParamsHash is Runner.ParamsHash without the Runner: the run
// identity of a full-scan campaign over c with cfg. The service
// front-end hashes every submission on the admission path — before
// deciding whether to build a simulator at all — so the cache/
// singleflight key must be computable from the netlist and parameters
// alone. It is the same CheckpointMeta hash Runner.ParamsHash returns,
// byte for byte (see TestJobParamsHashMatchesRunner).
func JobParamsHash(c *circuit.Circuit, cfg Config) string {
	return metaFor(c, scan.FullScan(c.NumSV()).Len(), cfg).Hash()
}

// RunJob is the job-shaped campaign entry point the service front-end
// (cmd/limscand) schedules: run the configured campaign with
// checkpointing at ck.Path, transparently resuming when the path
// already holds a snapshot of this exact run. It is what makes a
// crashed service restartable by re-submission alone — the caller never
// needs to know whether a previous attempt got partway.
//
// The decision table, in order:
//
//   - no file at ck.Path: start fresh (the common case);
//   - a valid snapshot whose identity matches this runner and config:
//     resume from it (resumed=true) — byte-identical to an
//     uninterrupted run, per the resume-equivalence suite;
//   - a corrupt snapshot: discard it and start fresh, with a warning
//     event (a torn file from a crash mid-write must cost a re-run,
//     never a wrong answer or a stuck job);
//   - a valid snapshot of a *different* run: start fresh with a
//     warning. The service keys paths by ParamsHash so this means an
//     operator pointed two different campaigns at one state file; the
//     fresh run overwrites it with snapshots of the right identity.
//
// A nil ck (or empty Path) degenerates to RunWithContext without
// checkpointing.
func (r *Runner) RunJob(ctx context.Context, cfg Config, ck *CheckpointOptions) (res *Result, resumed bool, err error) {
	if ck == nil || ck.Path == "" {
		res, err = r.RunWithContext(ctx, cfg, ck)
		return res, false, err
	}
	snap, lerr := checkpoint.LoadFS(ck.FS, ck.Path)
	switch {
	case lerr == nil:
		if merr := snap.CheckMeta(r.CheckpointMeta(cfg)); merr == nil {
			res, err = r.ResumeWithContext(ctx, cfg, snap, ck)
			return res, true, err
		}
		r.observer(cfg).Emit(obs.Event{Kind: obs.KindWarning,
			Msg: fmt.Sprintf("checkpoint %s belongs to a different run; starting fresh", ck.Path)})
	case errs.Is(lerr, errs.CorruptSnapshot):
		r.observer(cfg).Emit(obs.Event{Kind: obs.KindWarning,
			Msg: fmt.Sprintf("checkpoint %s is corrupt; starting fresh: %v", ck.Path, lerr)})
		r.observer(cfg).Counter("checkpoint_corrupt_total").Inc()
	case errs.Is(lerr, os.ErrNotExist):
		// No previous attempt: the expected fresh-start path.
	default:
		// The file exists but cannot be read (permissions, I/O): that is
		// an environment problem the caller must see, not paper over —
		// silently re-running would orphan the unreadable snapshot.
		return nil, false, lerr
	}
	res, err = r.RunWithContext(ctx, cfg, ck)
	return res, false, err
}
