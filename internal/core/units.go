// Distributed work units: the seam that lets a campaign's fault
// simulation run somewhere else.
//
// A Procedure 2 campaign is a strict sequence of *sessions* — TS0, then
// one TS(I,D1) per candidate pair — where each session simulates the
// currently remaining faults against one test set. A fault's verdict in
// a session is a pure function of (tests, fault): lanes never interact,
// so any partition of the remaining-fault list can be simulated
// anywhere, in any order, any number of times, and fold back into the
// same fault set (the same purity argument behind internal/fsim's
// sharded mode; see fsim/parallel.go). A UnitSpec carries everything a
// stateless worker needs to recompute its slice of a session from
// scratch — campaign parameters regenerate the tests, the collapsed
// fault universe is a deterministic function of the circuit — and a
// UnitResult folds back in unit order, so a campaign executed by 0, 1
// or N workers produces byte-identical reports.
package core

import (
	"context"
	"fmt"

	"limscan/internal/bmark"
	"limscan/internal/checkpoint"
	"limscan/internal/errs"
	"limscan/internal/fault"
	"limscan/internal/fsim"
	"limscan/internal/obs"
	"limscan/internal/scan"
)

// SessionRef names one fault-simulation session of a campaign. I == 0
// is the TS0 session (D1 is ignored there); I >= 1 with a D1 value is
// the Procedure 1 test set TS(I,D1).
type SessionRef struct {
	I  int `json:"i"`
	D1 int `json:"d1"`
}

// SessionRequest is one session handed to a SessionRunner: the runner
// and config that own it, the reference naming it, the already-generated
// tests, the live fault set to fold detections into, and the exact
// fsim.Options the in-process path would have used (Ctx, Obs, Trace,
// Workers, Mode).
type SessionRequest struct {
	Runner  *Runner
	Config  Config
	Session SessionRef
	Tests   []scan.Test
	Faults  *fault.Set
	Options fsim.Options
}

// SessionRunner intercepts a campaign's fault-simulation sessions. The
// contract mirrors fsim.Run exactly: mark newly detected faults in
// req.Faults, return the session stats, honor req.Options.Ctx. The
// implementation must leave the fault set in the same final state the
// in-process simulator would — internal/dispatch does so by partitioning
// the session into units and merging results in unit order.
type SessionRunner interface {
	RunSession(req SessionRequest) (fsim.RunStats, error)
}

// SetSessionRunner routes every fault-simulation session of the
// runner's campaigns through sr instead of the in-process simulator.
// Nil restores the in-process path. The campaign logic around the seam
// (test generation, classification, pair selection, checkpointing) is
// unchanged either way.
func (r *Runner) SetSessionRunner(sr SessionRunner) { r.sessions = sr }

// runSession executes one session through the seam: the configured
// SessionRunner if any, the in-process simulator otherwise.
func (r *Runner) runSession(ctx context.Context, cfg Config, ref SessionRef, tests []scan.Test, fs *fault.Set, o *obs.Campaign) (fsim.RunStats, error) {
	opts := fsim.Options{Obs: o, Workers: r.fsimWorkers(cfg), Mode: r.fsimMode(cfg), Ctx: ctx, Trace: r.tracer}
	if r.sessions != nil {
		return r.sessions.RunSession(SessionRequest{
			Runner: r, Config: cfg, Session: ref, Tests: tests, Faults: fs, Options: opts,
		})
	}
	return r.sim.Run(tests, fs, opts)
}

// SessionCycles returns the clock-cycle cost of applying tests as one
// session under the runner's scan plan — the same cost model fsim.Run
// reports. The coordinator computes cycles locally (they depend only on
// the tests), so workers never report time-like quantities.
func (r *Runner) SessionCycles(tests []scan.Test) int64 {
	return scan.CostModel{NSV: r.plan.Len()}.SessionCycles(tests)
}

// DefaultUnitFaults is the fault count of one work unit: the checkpoint
// chunk geometry (16 batches of fsim.LanesPerWord), sized so a unit is
// meaty enough to amortize dispatch overhead yet small enough that
// losing a worker mid-unit forfeits little work.
const DefaultUnitFaults = 16 * fsim.LanesPerWord

// UnitSpec is one leased work unit on the wire: a consecutive slice of
// a session's remaining faults plus every parameter a stateless worker
// needs to recompute the session from scratch. Tests are regenerated,
// never shipped — they are pure functions of (Seed, I, D1) — and fault
// indices refer to the canonical collapsed fault list, a deterministic
// function of the circuit. CircuitHash and NumFaults guard against a
// worker resolving a different netlist than the coordinator.
type UnitSpec struct {
	// Key identifies the unit within its coordinator (lease bookkeeping
	// and result routing).
	Key string `json:"key"`

	Circuit     string `json:"circuit"`
	CircuitHash string `json:"circuit_hash"`
	NumFaults   int    `json:"num_faults"`

	// Campaign parameters sufficient to regenerate TS0 and any TS(I,D1).
	LA            int    `json:"la"`
	LB            int    `json:"lb"`
	N             int    `json:"n"`
	Seed          uint64 `json:"seed"`
	ReseedPerTest bool   `json:"reseed_per_test,omitempty"`
	UseLFSR       bool   `json:"use_lfsr,omitempty"`
	LFSRDegree    int    `json:"lfsr_degree,omitempty"`
	Mode          int    `json:"mode,omitempty"`

	Session SessionRef `json:"session"`

	// Faults are indices into the canonical collapsed fault list —
	// this unit's slice of the session's remaining faults, ascending.
	Faults []int `json:"faults"`
	// Attrib asks for detection-site attribution (the coordinator has an
	// observer attached).
	Attrib bool `json:"attrib,omitempty"`
}

// config reconstructs the campaign parameters a worker needs for test
// regeneration. Fields irrelevant to test generation (D1Order, NSameFC,
// MaxIterations) stay at their defaults.
func (u UnitSpec) config() Config {
	return Config{
		LA: u.LA, LB: u.LB, N: u.N, Seed: u.Seed,
		ReseedPerTest: u.ReseedPerTest,
		UseLFSR:       u.UseLFSR, LFSRDegree: u.LFSRDegree,
	}
}

// UnitResult is a completed unit: a detection bitmask over the spec's
// fault slice plus the per-unit aggregates that fold into RunStats.
// Everything here is a pure function of the spec, which is what makes
// at-least-once delivery safe: any two attempts produce identical bytes.
type UnitResult struct {
	Key string `json:"key"`
	// Detected is a bitmask over spec.Faults: bit j set means
	// spec.Faults[j] was detected (bit j lives in word j/64).
	Detected []uint64 `json:"detected"`
	// Site attribution sums (zero unless spec.Attrib).
	PO int `json:"po,omitempty"`
	LS int `json:"ls,omitempty"`
	SO int `json:"so,omitempty"`
	// Batches is the number of fault batches the unit packed into.
	Batches int `json:"batches"`
}

// Bit reports whether fault j of the unit was detected.
func (r *UnitResult) Bit(j int) bool {
	w := j / 64
	return w < len(r.Detected) && r.Detected[w]&(1<<(j%64)) != 0
}

func (r *UnitResult) setBit(j int) {
	for len(r.Detected) <= j/64 {
		r.Detected = append(r.Detected, 0)
	}
	r.Detected[j/64] |= 1 << (j % 64)
}

// DeriveUnits partitions a session's remaining faults into UnitSpecs of
// at most chunk faults each (chunk <= 0 means DefaultUnitFaults; any
// value is rounded up to a multiple of fsim.LanesPerWord so unit
// boundaries coincide with batch boundaries and per-unit batch counts
// sum to the single-process count). Keys are "<prefix>.<index>".
func DeriveUnits(req SessionRequest, keyPrefix string, chunk int) []UnitSpec {
	if chunk <= 0 {
		chunk = DefaultUnitFaults
	}
	if rest := chunk % fsim.LanesPerWord; rest != 0 {
		chunk += fsim.LanesPerWord - rest
	}
	r := req.Runner
	base := UnitSpec{
		Circuit:     r.c.Name,
		CircuitHash: checkpoint.CircuitHash(r.c),
		NumFaults:   len(req.Faults.Faults),
		LA:          req.Config.LA, LB: req.Config.LB, N: req.Config.N,
		Seed:          req.Config.Seed,
		ReseedPerTest: req.Config.ReseedPerTest,
		UseLFSR:       req.Config.UseLFSR,
		LFSRDegree:    req.Config.LFSRDegree,
		Mode:          int(req.Options.Mode),
		Session:       req.Session,
		Attrib:        req.Options.Obs != nil && req.Options.MISRDegree == 0,
	}
	rem := req.Faults.Remaining()
	var units []UnitSpec
	for start := 0; start < len(rem); start += chunk {
		end := start + chunk
		if end > len(rem) {
			end = len(rem)
		}
		u := base
		u.Key = fmt.Sprintf("%s.%d", keyPrefix, len(units))
		u.Faults = append([]int(nil), rem[start:end]...)
		units = append(units, u)
	}
	return units
}

// MergeUnits folds completed units back into the session's fault set in
// unit order and returns the aggregated stats (Cycles left zero — the
// caller computes it from the tests; see Runner.SessionCycles). The
// fold is the same ordered, last-write-wins-free accumulation
// fsim.mergeBatch performs, so the final fault set and stats are
// byte-identical to an in-process run.
func MergeUnits(fs *fault.Set, units []UnitSpec, results []*UnitResult) (fsim.RunStats, error) {
	var stats fsim.RunStats
	if len(units) != len(results) {
		return stats, fmt.Errorf("core: %d units but %d results", len(units), len(results))
	}
	for i := range units {
		res := results[i]
		if res == nil {
			return stats, fmt.Errorf("core: unit %s has no result", units[i].Key)
		}
		for j, fi := range units[i].Faults {
			if fi < 0 || fi >= len(fs.State) {
				return stats, fmt.Errorf("core: unit %s fault index %d out of range", units[i].Key, fi)
			}
			if res.Bit(j) {
				fs.State[fi] = fault.Detected
				stats.Detected++
			}
		}
		stats.DetectedAtPO += res.PO
		stats.DetectedAtLimitedScan += res.LS
		stats.DetectedAtScanOut += res.SO
		stats.Batches += res.Batches
	}
	return stats, nil
}

// ExecUnitLocal runs one unit on the session's own simulator and tests —
// the coordinator's degraded fallback when no workers are live and its
// last resort for units that exhausted their lease attempts. It builds
// a scratch fault set over the same fault list (only the unit's faults
// undetected) so the campaign set is untouched until MergeUnits, exactly
// like a remote execution. Call sequentially from the campaign
// goroutine: it borrows req.Runner's simulator.
func ExecUnitLocal(req SessionRequest, spec UnitSpec) (*UnitResult, error) {
	sub := &fault.Set{Faults: req.Faults.Faults, State: make([]fault.Status, len(req.Faults.Faults))}
	for i := range sub.State {
		sub.State[i] = fault.Detected
	}
	for _, fi := range spec.Faults {
		if fi < 0 || fi >= len(sub.State) {
			return nil, fmt.Errorf("core: unit %s fault index %d out of range", spec.Key, fi)
		}
		sub.State[fi] = fault.Undetected
	}
	opts := fsim.Options{
		Workers: req.Options.Workers,
		Mode:    fsim.Mode(spec.Mode),
		Ctx:     req.Options.Ctx,
	}
	if spec.Attrib {
		opts.Obs = obs.New(obs.NewRegistry(), nil)
	}
	st, err := req.Runner.sim.Run(req.Tests, sub, opts)
	if err != nil {
		return nil, err
	}
	return unitResult(spec, sub, st), nil
}

// unitResult packs a finished scratch set into the wire form.
func unitResult(spec UnitSpec, sub *fault.Set, st fsim.RunStats) *UnitResult {
	res := &UnitResult{Key: spec.Key, Batches: st.Batches,
		PO: st.DetectedAtPO, LS: st.DetectedAtLimitedScan, SO: st.DetectedAtScanOut}
	if n := len(spec.Faults); n > 0 {
		res.Detected = make([]uint64, (n+63)/64)
	}
	for j, fi := range spec.Faults {
		if sub.State[fi] == fault.Detected {
			res.setBit(j)
		}
	}
	return res
}

// UnitRunner executes UnitSpecs from scratch — the worker process side.
// It caches the expensive invariants between units (the circuit, its
// simulator and collapsed fault list per campaign; the regenerated test
// set per session), since a fleet worker chews through many units of
// the same session in a row. Not safe for concurrent use; a worker
// process runs units one at a time.
type UnitRunner struct {
	campKey  string
	sim      *fsim.Simulator
	faults   []fault.Fault
	ts0      []scan.Test
	cfg      Config
	sessKey  SessionRef
	sessSet  bool
	tests    []scan.Test
	numFault int
}

// campaignKey identifies the cached circuit+TS0 invariants.
func campaignKey(u UnitSpec) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%v|%v|%d",
		u.Circuit, u.CircuitHash, u.NumFaults, u.LA, u.LB, u.N, u.Seed,
		u.ReseedPerTest, u.UseLFSR, u.LFSRDegree)
}

// Run executes one unit and returns its result. Any mismatch between
// the spec and what this process can reconstruct (unknown circuit,
// different circuit hash, fault count or index disagreement) is an
// errs.Input error — the worker's build disagrees with the
// coordinator's, and retrying locally cannot help.
func (u *UnitRunner) Run(spec UnitSpec) (*UnitResult, error) {
	if err := u.prepare(spec); err != nil {
		return nil, err
	}
	sub := fault.NewSet(u.faults)
	for i := range sub.State {
		sub.State[i] = fault.Detected
	}
	for _, fi := range spec.Faults {
		if fi < 0 || fi >= len(sub.State) {
			return nil, errs.Newf(errs.Input, "unit %s: fault index %d out of range [0,%d)", spec.Key, fi, len(sub.State))
		}
		sub.State[fi] = fault.Undetected
	}
	opts := fsim.Options{Workers: 1, Mode: fsim.Mode(spec.Mode)}
	if spec.Attrib {
		opts.Obs = obs.New(obs.NewRegistry(), nil)
	}
	st, err := u.sim.Run(u.tests, sub, opts)
	if err != nil {
		return nil, err
	}
	return unitResult(spec, sub, st), nil
}

// prepare (re)builds the cached invariants for the spec's campaign and
// session.
func (u *UnitRunner) prepare(spec UnitSpec) error {
	if key := campaignKey(spec); key != u.campKey {
		c, err := bmark.Load(spec.Circuit)
		if err != nil {
			return errs.Wrap(errs.Input, err)
		}
		if h := checkpoint.CircuitHash(c); h != spec.CircuitHash {
			return errs.Newf(errs.Input, "unit %s: circuit %s hash %s != coordinator's %s",
				spec.Key, spec.Circuit, h, spec.CircuitHash)
		}
		reps, _ := fault.Collapse(c, fault.Universe(c))
		if len(reps) != spec.NumFaults {
			return errs.Newf(errs.Input, "unit %s: %d collapsed faults != coordinator's %d",
				spec.Key, len(reps), spec.NumFaults)
		}
		cfg := spec.config()
		u.sim = fsim.New(c)
		u.faults = reps
		u.cfg = cfg
		u.ts0 = GenerateTS0(c, cfg)
		u.campKey = key
		u.sessSet = false
		u.numFault = len(reps)
	}
	if !u.sessSet || spec.Session != u.sessKey {
		if spec.Session.I == 0 {
			u.tests = u.ts0
		} else {
			u.tests = InsertLimitedScans(u.sim.Circuit(), u.ts0, spec.Session.I, spec.Session.D1, u.cfg)
		}
		u.sessKey = spec.Session
		u.sessSet = true
	}
	return nil
}
