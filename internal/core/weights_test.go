package core

import (
	"testing"

	"limscan/internal/circuit"
	"limscan/internal/fault"
	"limscan/internal/fsim"
)

func TestComputeWeightsRange(t *testing.T) {
	for _, name := range []string{"s27", "s208", "s420", "b10"} {
		c := load(t, name)
		w := ComputeWeights(c)
		if len(w) != c.NumPI() {
			t.Fatalf("%s: %d weights for %d inputs", name, len(w), c.NumPI())
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestComputeWeightsBias(t *testing.T) {
	// A PI feeding only a wide AND must be biased towards 1; one feeding
	// a wide OR towards 0; through an inverter the bias flips.
	b := circuit.NewBuilder("bias")
	for _, in := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		b.AddInput(in)
	}
	b.AddGate("wideand", circuit.And, "A", "B", "C", "D", "E")
	b.AddGate("notf", circuit.Not, "F")
	b.AddGate("wideor", circuit.Or, "notf", "G", "H", "wideand")
	b.MarkOutput("wideor")
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	w := ComputeWeights(c)
	aIdx, _ := 0, 0 // A is input 0
	if w[aIdx] <= 8 {
		t.Errorf("A weight = %d/16, want > 8 (feeds wide AND)", w[aIdx])
	}
	// G (index 6) feeds only the wide OR: wants 0.
	if w[6] >= 8 {
		t.Errorf("G weight = %d/16, want < 8 (feeds wide OR)", w[6])
	}
	// F feeds the wide OR through an inverter: the OR wants 0, so F
	// wants 1.
	if w[5] <= 8 {
		t.Errorf("F weight = %d/16, want > 8 (inverted into wide OR)", w[5])
	}
}

func TestGenerateWeightedTS0(t *testing.T) {
	c := load(t, "s420")
	cfg := Config{LA: 16, LB: 32, N: 32, Seed: 5}
	w := make(Weights, c.NumPI())
	for i := range w {
		w[i] = 12 // 75% ones
	}
	ts, err := GenerateWeightedTS0(c, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 64 {
		t.Fatalf("tests = %d", len(ts))
	}
	ones, bits := 0, 0
	for i := range ts {
		for _, v := range ts[i].T {
			ones += v.OnesCount()
			bits += v.Len()
		}
	}
	frac := float64(ones) / float64(bits)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("ones fraction %.3f, want about 0.75", frac)
	}
	// Reproducible.
	ts2, err := GenerateWeightedTS0(c, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if !ts[i].SI.Equal(ts2[i].SI) {
			t.Fatal("weighted TS0 not reproducible")
		}
	}
}

func TestGenerateWeightedTS0Errors(t *testing.T) {
	c := load(t, "s27")
	if _, err := GenerateWeightedTS0(c, Config{LA: 2, LB: 4, N: 2}, Weights{8}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := GenerateWeightedTS0(c, Config{LA: 2, LB: 4, N: 2}, Weights{8, 8, 8, 16}); err == nil {
		t.Error("out-of-range weight accepted")
	}
}

func TestWeightedImprovesWideGateCoverage(t *testing.T) {
	// On an analog with wide gates, structure-derived weights must not
	// hurt initial coverage, and usually help the wide-gate faults. We
	// assert non-catastrophe (within a small delta) rather than strict
	// improvement, since weighting also starves OR-type excitation.
	c := load(t, "s420")
	cfg := Config{LA: 8, LB: 16, N: 32, Seed: 7}
	r := NewRunner(c)

	plainTests := GenerateTS0(c, cfg)
	fsPlain := r.NewFaultSet()
	s := fsim.New(c)
	if _, err := s.Run(plainTests, fsPlain, fsim.Options{}); err != nil {
		t.Fatal(err)
	}
	w := ComputeWeights(c)
	weightedTests, err := GenerateWeightedTS0(c, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	fsW := r.NewFaultSet()
	if _, err := s.Run(weightedTests, fsW, fsim.Options{}); err != nil {
		t.Fatal(err)
	}
	plain := fsPlain.Count(fault.Detected)
	weighted := fsW.Count(fault.Detected)
	t.Logf("s420 initial coverage: plain %d, weighted %d of %d", plain, weighted, len(fsPlain.Faults))
	if weighted < plain*9/10 {
		t.Errorf("weighting collapsed coverage: %d vs %d", weighted, plain)
	}
}
