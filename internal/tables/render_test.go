package tables

import (
	"strings"
	"testing"

	"limscan/internal/core"
)

// TestRenderTable6SingleCircuit: a one-row table renders the title, the
// header, the separator and exactly one data row with every column
// populated.
func TestRenderTable6SingleCircuit(t *testing.T) {
	rows := []Row6{{
		Circuit: "s27",
		Result: &core.Result{
			Config:          core.Config{LA: 10, LB: 5, N: 2},
			TotalFaults:     35,
			InitialDetected: 22,
			InitialCycles:   45,
			Pairs:           []core.PairResult{{I: 1, D1: 2, Detected: 13, Cycles: 289}},
			Detected:        35,
			TotalCycles:     334,
			AvgLS:           0.47,
			Complete:        true,
		},
		Complete: true,
		Tried:    1,
	}}
	out := renderTable6("T", rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, one row
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	row := lines[3]
	for _, want := range []string{"s27", "10,5,2", "22", "45", "334", "0.47", "100.00", "true"} {
		if !strings.Contains(row, want) {
			t.Errorf("data row missing %q: %q", want, row)
		}
	}
}

// TestRenderTable6ZeroPairs: a campaign that selected no (I,D1) pairs
// renders app=0 with blank det/cycles/ls cells rather than misleading
// zeros, and the coverage column falls back to the TS0 figure.
func TestRenderTable6ZeroPairs(t *testing.T) {
	rows := []Row6{{
		Circuit: "s298",
		Result: &core.Result{
			Config:      core.Config{LA: 4, LB: 2, N: 1},
			TotalFaults: 100,
		},
	}}
	out := renderTable6("T", rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	row := lines[len(lines)-1]
	cells := strings.Fields(row)
	// With det/cycles/ls blank the row collapses to:
	// circuit, LA,LB,N, init det, init cycles, app, cov%, complete.
	want := []string{"s298", "4,2,1", "0", "0", "0", "0.00", "false"}
	if len(cells) != len(want) {
		t.Fatalf("zero-pair row has %d cells %v, want %d", len(cells), cells, len(want))
	}
	for i, w := range want {
		if cells[i] != w {
			t.Errorf("cell %d = %q, want %q (row %q)", i, cells[i], w, row)
		}
	}
}

// TestRenderTable6FullCoverage: the 100%-coverage row prints cov%
// as 100.00 and complete as true even when it took several pairs.
func TestRenderTable6FullCoverage(t *testing.T) {
	rows := []Row6{{
		Circuit: "s382",
		Result: &core.Result{
			Config:          core.Config{LA: 20, LB: 10, N: 4},
			TotalFaults:     80,
			Untestable:      5,
			InitialDetected: 60,
			InitialCycles:   12345,
			Pairs: []core.PairResult{
				{I: 1, D1: 3, Detected: 10, Cycles: 5000},
				{I: 2, D1: 1, Detected: 5, Cycles: 6000},
			},
			Detected:    75,
			TotalCycles: 23345,
			AvgLS:       0.33,
			Complete:    true,
		},
		Complete: true,
		Tried:    3,
	}}
	out := renderTable6("T", rows)
	row := strings.Split(strings.TrimRight(out, "\n"), "\n")[3]
	for _, want := range []string{"s382", "20,10,4", "12.3K", "2", "75", "23.3K", "0.33", "100.00", "true"} {
		if !strings.Contains(row, want) {
			t.Errorf("row missing %q: %q", want, row)
		}
	}
}
