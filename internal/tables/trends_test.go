package tables

// Trend tests: the paper's qualitative findings, asserted against the
// reproduction with fixed seeds. These are the claims EXPERIMENTS.md
// reports; if a change to the generator or the procedures breaks one of
// them, this file says so before the documentation lies.

import (
	"testing"

	"limscan/internal/core"
	"limscan/internal/fault"
	"limscan/internal/fsim"
)

func TestTrendDescendingD1LowersLS(t *testing.T) {
	// Paper, Table 7: "the average number of limited scan time units is
	// lower when D1 is considered in decreasing order."
	for _, name := range []string{"s208", "s298"} {
		r := core.NewRunner(mustLoad(name))
		cfg := core.Config{LA: 8, LB: 16, N: 64, Seed: 1}
		asc, err := r.RunProcedure2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.D1Order = core.DescendingD1()
		desc, err := r.RunProcedure2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(asc.Pairs) == 0 || len(desc.Pairs) == 0 {
			t.Skipf("%s: no pairs selected at this seed", name)
		}
		if desc.AvgLS >= asc.AvgLS {
			t.Errorf("%s: descending D1 did not lower ls: %.3f vs %.3f",
				name, desc.AvgLS, asc.AvgLS)
		}
	}
}

func TestTrendLargerTS0NeedsFewerPairs(t *testing.T) {
	// Paper, Table 8: "it is possible to reduce the number of
	// applications of the test set by using larger values of LA, LB
	// and/or N." Compare a small and a much larger combination.
	r := core.NewRunner(mustLoad("s420"))
	small, err := r.RunProcedure2(core.Config{LA: 8, LB: 16, N: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := r.RunProcedure2(core.Config{LA: 32, LB: 128, N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.InitialDetected <= small.InitialDetected {
		t.Errorf("larger TS0 detected less initially: %d vs %d",
			large.InitialDetected, small.InitialDetected)
	}
	if len(large.Pairs) > len(small.Pairs) {
		t.Errorf("larger TS0 needed more pairs: %d vs %d",
			len(large.Pairs), len(small.Pairs))
	}
}

func TestTrendLimitedScanBeatsPlainReapplication(t *testing.T) {
	// The heart of the paper: applying TS(I,D1) (with limited scans)
	// detects faults that re-applying plain TS0 cannot, because the
	// plain set is deterministic — its second application detects
	// nothing new at all.
	c := mustLoad("s420")
	r := core.NewRunner(c)
	cfg := core.Config{LA: 8, LB: 16, N: 64, Seed: 1}
	res, err := r.RunProcedure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Skip("TS0 already complete at this seed")
	}
	if res.Detected <= res.InitialDetected {
		t.Errorf("limited scan sets added nothing: %d -> %d",
			res.InitialDetected, res.Detected)
	}
}

func TestTrendAtSpeedRunsHelpTransitionCoverage(t *testing.T) {
	// The reason the paper cares about longer at-speed sequences:
	// transition (delay) faults need launch-on-capture pairs. A test
	// program of single-vector tests — the classical test-per-scan
	// scheme — detects none at all, while the paper's multi-vector
	// at-speed runs cover most of the transition universe.
	c := mustLoad("s298")
	universe := fault.TransitionUniverse(c)

	cov := func(length, n int) int {
		cfg := core.Config{LA: length, LB: length, N: n / 2, Seed: 3}
		tests := core.GenerateTS0(c, cfg)
		fs := fault.NewSet(universe)
		if _, err := fsim.New(c).Run(tests, fs, fsim.Options{}); err != nil {
			t.Fatal(err)
		}
		return fs.Count(fault.Detected)
	}
	perScan := cov(1, 128) // 128 vectors, one per scan
	atSpeed := cov(16, 8)  // same 128 vectors in 16-vector runs
	t.Logf("transition coverage: test-per-scan %d, at-speed %d of %d",
		perScan, atSpeed, len(universe))
	if perScan != 0 {
		t.Errorf("test-per-scan detected %d transition faults; launch pairs cannot exist", perScan)
	}
	if atSpeed < len(universe)/2 {
		t.Errorf("at-speed runs covered only %d/%d transition faults", atSpeed, len(universe))
	}
}
