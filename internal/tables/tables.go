// Package tables regenerates every table of the paper's evaluation
// section from the reproduction's own machinery. Each TableN function
// returns the rendered table text; cmd/tables prints them and the root
// benchmark suite times them.
package tables

import (
	"fmt"
	"sort"
	"strings"

	"limscan/internal/baseline"
	"limscan/internal/bmark"
	"limscan/internal/circuit"
	"limscan/internal/core"
	"limscan/internal/fault"
	"limscan/internal/fsim"
	"limscan/internal/logic"
	"limscan/internal/report"
	"limscan/internal/scan"
)

// Options configures table generation.
type Options struct {
	// Seed is the campaign base seed (default 1).
	Seed uint64
	// MaxCombos caps the per-circuit combination search (default 16).
	MaxCombos int
	// Quick shrinks the workloads (fewer grid cells, fewer circuits) for
	// fast demonstration runs and benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxCombos == 0 {
		o.MaxCombos = 16
	}
	return o
}

func mustLoad(name string) *circuit.Circuit {
	c, err := bmark.Load(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Table1 reproduces the Section 2 example: a test on the real s27 whose
// fault is undetected without limited scan and detected with the
// operation shift(3) = 1, fill bit 0. The fault shown is found by
// scanning the collapsed fault list for one with exactly the paper's
// behaviour.
func Table1(o Options) string {
	c := mustLoad("s27")
	plain := scan.Test{SI: mustVec("001")}
	for _, v := range []string{"0111", "1001", "0111", "1001", "0100"} {
		plain.T = append(plain.T, mustVec(v))
	}
	limited := plain
	limited.Shift = []int{0, 0, 0, 1, 0}
	limited.Fill = [][]uint8{nil, nil, nil, {0}, nil}

	reps, _ := fault.Collapse(c, fault.Universe(c))
	var chosen *fault.Fault
	for i := range reps {
		_, _, _, detPlain := fsim.Trace(c, plain, reps[i])
		_, _, _, detLim := fsim.Trace(c, limited, reps[i])
		if !detPlain && detLim {
			chosen = &reps[i]
			break
		}
	}
	var b strings.Builder
	if chosen == nil {
		fmt.Fprintln(&b, "Table 1: no fault with the paper's behaviour found (unexpected)")
		return b.String()
	}
	fmt.Fprintf(&b, "Table 1: a test for s27 (fault f = %s)\n\n", chosen.Pretty(c))

	render := func(title string, tt scan.Test) {
		steps, fg, fb, det := fsim.Trace(c, tt, *chosen)
		t := report.NewTable(title, "u", "shift(u)", "T(u)", "S(u)", "Z(u)")
		for _, st := range steps {
			t.AddRow(st.U, st.Shift, st.In.String(),
				st.StateGood.String()+"/"+st.StateBad.String(),
				st.OutGood.String()+"/"+st.OutBad.String())
		}
		t.AddRow(len(steps), "", "", fg.String()+"/"+fb.String(), "")
		t.Render(&b)
		fmt.Fprintf(&b, "detected: %v\n\n", det)
	}
	render("(a) Without limited scan", plain)
	render("(b) With limited scan (shift(3)=1, fill 0)", limited)
	return b.String()
}

// Table2 renders the Table 1(b) test in accurate timing (the limited
// scan operation occupies its own time unit, delaying later vectors).
func Table2(o Options) string {
	c := mustLoad("s27")
	tt := scan.Test{SI: mustVec("001")}
	for _, v := range []string{"0111", "1001", "0111", "1001", "0100"} {
		tt.T = append(tt.T, mustVec(v))
	}
	tt.Shift = []int{0, 0, 0, 1, 0}
	tt.Fill = [][]uint8{nil, nil, nil, {0}, nil}

	reps, _ := fault.Collapse(c, fault.Universe(c))
	plain := tt
	plain.Shift, plain.Fill = nil, nil
	var chosen *fault.Fault
	for i := range reps {
		_, _, _, dp := fsim.Trace(c, plain, reps[i])
		_, _, _, dl := fsim.Trace(c, tt, reps[i])
		if !dp && dl {
			chosen = &reps[i]
			break
		}
	}
	var b strings.Builder
	if chosen == nil {
		return "Table 2: no qualifying fault (unexpected)\n"
	}
	fmt.Fprintf(&b, "Table 2: timing view of the Table 1(b) test (fault f = %s)\n\n", chosen.Pretty(c))
	steps, fg, fb, _ := fsim.Trace(c, tt, *chosen)
	t := report.NewTable("", "u", "T(u)", "S(u)", "Z(u)")
	u := 0
	for _, st := range steps {
		for k := 0; k < st.Shift; k++ {
			// A scan time unit: no vector, no PO observation.
			t.AddRow(u, "-", "(scan shift)", "-")
			u++
		}
		t.AddRow(u, st.In.String(),
			st.StateGood.String()+"/"+st.StateBad.String(),
			st.OutGood.String()+"/"+st.OutBad.String())
		u++
	}
	t.AddRow(u, "", fg.String()+"/"+fb.String(), "")
	t.Render(&b)
	return b.String()
}

// gridFor runs Procedure 2 on every cell of the paper's (L_A, L_B, N)
// grid for one circuit and renders the Ncyc and Ncyc0 grids of Tables 3
// and 4. Cells whose campaign does not reach complete coverage render as
// a dash, matching the paper.
func gridFor(name string, o Options) string {
	o = o.withDefaults()
	c := mustLoad(name)
	r := core.NewRunner(c)
	m := scan.CostModel{NSV: c.NumSV()}

	las := []int{8, 16, 32, 64}
	lbs := []int{16, 32, 64, 128, 256}
	ns := []int{64, 128, 256}
	if o.Quick {
		las = []int{8, 16}
		lbs = []int{16, 32, 64}
		ns = []int{64}
	}
	ncyc := report.NewGrid(fmt.Sprintf("Ncyc (total, complete coverage) for %s", name), las, lbs, ns)
	ncyc0 := report.NewGrid(fmt.Sprintf("Ncyc0 for %s", name), las, lbs, ns)
	for _, n := range ns {
		for _, la := range las {
			for _, lb := range lbs {
				if la >= lb {
					continue
				}
				ncyc0.Set(n, la, lb, fmt.Sprintf("%d", m.Ncyc0(la, lb, n)))
				res, err := r.RunProcedure2(core.Config{LA: la, LB: lb, N: n, Seed: o.Seed})
				if err != nil {
					panic(err)
				}
				if res.Complete {
					ncyc.Set(n, la, lb, fmt.Sprintf("%d", res.TotalCycles))
				}
			}
		}
	}
	var b strings.Builder
	ncyc.Render(&b)
	fmt.Fprintln(&b)
	ncyc0.Render(&b)
	return b.String()
}

// Table3 is the s208 trade-off grid.
func Table3(o Options) string {
	return "Table 3: clock cycles for s208 (analog)\n\n" + gridFor("s208", o)
}

// Table4 is the s420 trade-off grid.
func Table4(o Options) string {
	return "Table 4: clock cycles for s420 (analog)\n\n" + gridFor("s420", o)
}

// Table5 lists the first 10 (L_A, L_B, N) combinations by increasing
// N_cyc0 for N_SV = 21 and N_SV = 74. This table is pure arithmetic and
// reproduces the paper exactly.
func Table5(o Options) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 5: Ncyc0 as a function of LA, LB and N")
	fmt.Fprintln(&b)
	for _, nsv := range []int{21, 74} {
		t := report.NewTable(fmt.Sprintf("NSV=%d", nsv), "LA", "LB", "N", "Ncyc0")
		combos := core.Combos(nsv)
		for i := 0; i < 10 && i < len(combos); i++ {
			cb := combos[i]
			t.AddRow(cb.LA, cb.LB, cb.N, cb.Ncyc0)
		}
		t.Render(&b)
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table6Circuits is the default circuit list for Table 6 (the two giant
// analogs are opt-in: pass them explicitly via circuits).
var Table6Circuits = []string{
	"s208", "s298", "s344", "s382", "s400", "s420", "s510", "s641",
	"s820", "s953", "s1196", "s1423",
	"b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11",
}

// QuickCircuits is the reduced list used by Quick runs and benchmarks.
var QuickCircuits = []string{"s208", "s298", "s382", "b01", "b02"}

// Row6 is one computed Table 6 row, exported so Table 7 can reuse the
// chosen parameter combinations and tests can assert on trends.
type Row6 struct {
	Circuit  string
	Result   *core.Result
	Complete bool
	Tried    int
}

// ComputeTable6 runs the first-complete-combination campaign per circuit.
func ComputeTable6(circuits []string, d1Order []int, o Options) []Row6 {
	o = o.withDefaults()
	var rows []Row6
	for _, name := range circuits {
		r := core.NewRunner(mustLoad(name))
		out, err := r.FirstComplete(core.CampaignOptions{
			Base:      core.Config{Seed: o.Seed, D1Order: d1Order},
			MaxCombos: o.MaxCombos,
		})
		if err != nil {
			panic(err)
		}
		res := out.Best
		if out.Chosen != nil {
			res = out.Chosen
		}
		rows = append(rows, Row6{Circuit: name, Result: res, Complete: out.Chosen != nil, Tried: out.Tried})
	}
	return rows
}

func renderTable6(title string, rows []Row6) string {
	t := report.NewTable(title,
		"circuit", "LA,LB,N", "init det", "init cycles", "app", "det", "cycles", "ls", "cov%", "complete")
	for _, row := range rows {
		res := row.Result
		cfg := res.Config
		appCol, detCol, cycCol, lsCol := "0", "", "", ""
		if len(res.Pairs) > 0 {
			appCol = fmt.Sprintf("%d", len(res.Pairs))
			detCol = fmt.Sprintf("%d", res.Detected)
			cycCol = report.Cycles(res.TotalCycles)
			lsCol = fmt.Sprintf("%.2f", res.AvgLS)
		}
		t.AddRow(row.Circuit,
			fmt.Sprintf("%d,%d,%d", cfg.LA, cfg.LB, cfg.N),
			res.InitialDetected, report.Cycles(res.InitialCycles),
			appCol, detCol, cycCol, lsCol,
			fmt.Sprintf("%.2f", res.Coverage()*100),
			row.Complete)
	}
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Table6 is the main experimental table: for every circuit, the first
// (L_A, L_B, N) combination reaching complete coverage, with the initial
// and with-limited-scan statistics.
func Table6(circuits []string, o Options) string {
	o = o.withDefaults()
	if circuits == nil {
		circuits = Table6Circuits
		if o.Quick {
			circuits = QuickCircuits
		}
	}
	rows := ComputeTable6(circuits, nil, o)
	return renderTable6("Table 6: experimental results (D1 = 1,2,...,10)", rows)
}

// Table7 repeats Table 6 with the descending D1 order 10,9,...,1, using
// the same (L_A, L_B, N) combination Table 6 chose per circuit.
func Table7(circuits []string, o Options) string {
	o = o.withDefaults()
	if circuits == nil {
		circuits = Table6Circuits
		if o.Quick {
			circuits = QuickCircuits
		}
	}
	base := ComputeTable6(circuits, nil, o)
	var rows []Row6
	for _, row := range base {
		r := core.NewRunner(mustLoad(row.Circuit))
		cfg := row.Result.Config
		cfg.D1Order = core.DescendingD1()
		res, err := r.RunProcedure2(cfg)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Row6{Circuit: row.Circuit, Result: res, Complete: res.Complete, Tried: 1})
	}
	return renderTable6("Table 7: using D1 = 10,9,...,1 (same LA,LB,N as Table 6)", rows)
}

// Table8Circuits is the default circuit list for the Table 8 study.
var Table8Circuits = []string{"s208", "s420", "s953", "b09"}

// Table8 shows, per circuit, several (L_A, L_B, N) combinations with the
// number of applications (pairs) they need: larger combinations need
// fewer stored (I, D1) pairs.
func Table8(circuits []string, o Options) string {
	o = o.withDefaults()
	if circuits == nil {
		circuits = Table8Circuits
		if o.Quick {
			circuits = []string{"s208"}
		}
	}
	t := report.NewTable("Table 8: different combinations of LA, LB and N",
		"circuit", "LA,LB,N", "init det", "init cycles", "app", "det", "cycles", "ls", "complete")
	for _, name := range circuits {
		c := mustLoad(name)
		r := core.NewRunner(c)
		combos := core.Combos(c.NumSV())
		max := o.MaxCombos
		if max > len(combos) {
			max = len(combos)
		}
		type entry struct {
			cfg core.Config
			res *core.Result
		}
		var complete []entry
		for _, cb := range combos[:max] {
			cfg := core.Config{LA: cb.LA, LB: cb.LB, N: cb.N, Seed: o.Seed}
			res, err := r.RunProcedure2(cfg)
			if err != nil {
				panic(err)
			}
			if res.Complete {
				complete = append(complete, entry{cfg, res})
			}
		}
		// Show the frontier: entries whose app count strictly improves
		// on every cheaper complete entry, in Ncyc0 order.
		sort.SliceStable(complete, func(i, j int) bool {
			return complete[i].res.InitialCycles < complete[j].res.InitialCycles
		})
		best := 1 << 30
		for _, e := range complete {
			if len(e.res.Pairs) >= best {
				continue
			}
			best = len(e.res.Pairs)
			t.AddRow(name,
				fmt.Sprintf("%d,%d,%d", e.cfg.LA, e.cfg.LB, e.cfg.N),
				e.res.InitialDetected,
				report.Cycles(e.res.InitialCycles), len(e.res.Pairs), e.res.Detected,
				report.Cycles(e.res.TotalCycles), fmt.Sprintf("%.2f", e.res.AvgLS), true)
		}
	}
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Table9 is the Section 4 comparison: the [5]/[6]-style budgeted
// baseline versus the proposed method.
func Table9(circuits []string, o Options) string {
	o = o.withDefaults()
	if circuits == nil {
		circuits = QuickCircuits
		if !o.Quick {
			circuits = []string{"s208", "s298", "s344", "s382", "s400", "s420", "s641", "s820", "s953", "b03", "b09", "b10"}
		}
	}
	budget := int64(500000)
	if o.Quick {
		budget = 50000
	}
	t := report.NewTable(
		fmt.Sprintf("Baseline ([5]/[6]-style, %s-cycle budget) vs proposed", report.Cycles(budget)),
		"circuit", "chains", "base det", "base cov%", "prop det", "prop cov%", "prop cycles", "complete")
	for _, name := range circuits {
		c := mustLoad(name)
		reps, _ := fault.Collapse(c, fault.Universe(c))
		bfs := fault.NewSet(reps)
		bres, err := baseline.Run(c, bfs, baseline.Config{Budget: budget, Seed: o.Seed})
		if err != nil {
			panic(err)
		}
		r := core.NewRunner(c)
		out, err := r.FirstComplete(core.CampaignOptions{Base: core.Config{Seed: o.Seed}, MaxCombos: o.MaxCombos})
		if err != nil {
			panic(err)
		}
		res := out.Best
		if out.Chosen != nil {
			res = out.Chosen
		}
		den := res.TotalFaults - res.Untestable
		baseCov := 0.0
		if den > 0 {
			baseCov = float64(bres.Detected) / float64(den) * 100
		}
		t.AddRow(name, bres.Chains, bres.Detected, fmt.Sprintf("%.2f", baseCov),
			res.Detected, fmt.Sprintf("%.2f", res.Coverage()*100),
			report.Cycles(res.TotalCycles), out.Chosen != nil)
	}
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func mustVec(s string) logic.Vec { return logic.MustVec(s) }
