package tables

import (
	"strings"
	"testing"
)

var quick = Options{Seed: 1, MaxCombos: 6, Quick: true}

func TestTable1ShowsTheMechanism(t *testing.T) {
	out := Table1(quick)
	if !strings.Contains(out, "detected: false") || !strings.Contains(out, "detected: true") {
		t.Errorf("Table 1 must show an undetected->detected transition:\n%s", out)
	}
	if !strings.Contains(out, "s27") {
		t.Error("Table 1 must be about s27")
	}
}

func TestTable2HasScanTimeUnit(t *testing.T) {
	out := Table2(quick)
	if !strings.Contains(out, "(scan shift)") {
		t.Errorf("Table 2 must show the inserted scan time unit:\n%s", out)
	}
}

func TestTable5ExactPaperValues(t *testing.T) {
	out := Table5(quick)
	// Spot-check exact values from both columns of the paper's Table 5.
	for _, want := range []string{"4245", "5269", "11413", "11082", "21834", "NSV=21", "NSV=74"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3QuickStructure(t *testing.T) {
	out := Table3(quick)
	for _, want := range []string{"s208", "Ncyc0", "LB=16", "2568"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6QuickStructure(t *testing.T) {
	out := Table6(nil, quick)
	for _, want := range []string{"circuit", "s208", "init det", "complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 6 missing %q:\n%s", want, out)
		}
	}
}

func TestTable7UsesDescendingOrder(t *testing.T) {
	out := Table7([]string{"s208"}, quick)
	if !strings.Contains(out, "10,9") {
		t.Errorf("Table 7 title must mention the descending order:\n%s", out)
	}
	if !strings.Contains(out, "s208") {
		t.Error("Table 7 missing circuit row")
	}
}

func TestTable8ShowsAppFrontier(t *testing.T) {
	out := Table8([]string{"s208"}, quick)
	if !strings.Contains(out, "s208") {
		t.Errorf("Table 8 missing s208:\n%s", out)
	}
}

func TestTable9Comparison(t *testing.T) {
	out := Table9([]string{"s208"}, quick)
	for _, want := range []string{"s208", "base det", "prop det", "chains"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 9 missing %q:\n%s", want, out)
		}
	}
}

func TestComputeTable6RowsOrdered(t *testing.T) {
	rows := ComputeTable6([]string{"s208", "s298"}, nil, quick)
	if len(rows) != 2 || rows[0].Circuit != "s208" || rows[1].Circuit != "s298" {
		t.Fatalf("rows out of order: %+v", rows)
	}
	for _, r := range rows {
		if r.Result == nil {
			t.Fatal("nil result")
		}
		if r.Result.InitialDetected <= 0 {
			t.Error("TS0 detected nothing")
		}
	}
}
