package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestDrainSegmentIncremental pins the drain-cursor contract: each
// drain ships exactly the spans recorded since the previous one, and a
// drained recorder ships nothing.
func TestDrainSegmentIncremental(t *testing.T) {
	r := New()
	w := r.Track(WorkerExecTrack)
	for i := 0; i < 3; i++ {
		w.Add(CatDispatch, "u", time.Duration(i), 1)
	}
	seg := r.DrainSegment()
	if len(seg.Tracks) != 1 || len(seg.Tracks[0].Spans) != 3 {
		t.Fatalf("first drain: %+v", seg)
	}
	if seg.Tracks[0].Name != WorkerExecTrack {
		t.Errorf("track name lost: %q", seg.Tracks[0].Name)
	}
	w.Add(CatDispatch, "u", 10, 1)
	w.Add(CatDispatch, "u", 11, 1)
	seg = r.DrainSegment()
	if len(seg.Tracks) != 1 || len(seg.Tracks[0].Spans) != 2 {
		t.Fatalf("second drain: %+v", seg)
	}
	if got := seg.Tracks[0].Spans[0].StartNS; got != 10 {
		t.Errorf("second drain starts at old span: start_ns %d", got)
	}
	if seg = r.DrainSegment(); !seg.Empty() {
		t.Fatalf("drained recorder shipped again: %+v", seg)
	}
	// MainTrack exists but never recorded: it must not produce an empty
	// track entry.
	for _, st := range seg.Tracks {
		if st.Name == MainTrack {
			t.Error("empty main track shipped")
		}
	}
}

// TestDrainSegmentShipsDropDeltas: cap-dropped spans are reported once,
// as deltas, never re-shipped.
func TestDrainSegmentShipsDropDeltas(t *testing.T) {
	r := New()
	r.SetMaxSpans(2)
	w := r.Track(WorkerExecTrack)
	for i := 0; i < 5; i++ {
		w.Add(CatDispatch, "u", time.Duration(i), 1)
	}
	seg := r.DrainSegment()
	if seg.Tracks[0].Dropped != 3 {
		t.Fatalf("first drain dropped = %d, want 3", seg.Tracks[0].Dropped)
	}
	w.Add(CatDispatch, "u", 9, 1) // dropped too (cap already hit)
	seg = r.DrainSegment()
	if len(seg.Tracks) != 1 || seg.Tracks[0].Dropped != 1 || len(seg.Tracks[0].Spans) != 0 {
		t.Fatalf("drop delta: %+v", seg)
	}
}

func TestNilRecorderDrainsEmpty(t *testing.T) {
	var r *Recorder
	if seg := r.DrainSegment(); !seg.Empty() {
		t.Fatalf("nil recorder drained spans: %+v", seg)
	}
}

// TestFleetStitchRoundTrip is the tentpole contract end to end in
// miniature: a worker records, drains, ships; the fleet clock-aligns
// and stitches; the export is a multi-process trace that survives
// Parse with process identity, PIDs, and the offset applied.
func TestFleetStitchRoundTrip(t *testing.T) {
	f := NewFleet()
	// Coordinator-side spans: one acked unit on w1's dispatch lane.
	f.Coord().Track(DispatchTrackPrefix+"w1").Add(
		CatDispatch, SpanUnit, 5*time.Millisecond, 2*time.Millisecond,
		KV{K: "epoch", V: 1})

	// Worker w1's clock reads 0 when the coordinator's reads +10ms.
	f.SetOffset("w1", 10*time.Millisecond)
	wr := New()
	wr.Track(WorkerExecTrack).Add(CatDispatch, "job1/s1.i0.d0.0",
		1*time.Millisecond, 3*time.Millisecond, KV{K: "epoch", V: 1})
	f.AddSegment("w1", "job1", wr.DrainSegment())

	m := f.Model()
	if m.Processes[1] != "coordinator" || m.Processes[2] != "worker w1" {
		t.Fatalf("process table: %+v", m.Processes)
	}
	var exec *ModelTrack
	for i := range m.Tracks {
		if m.Tracks[i].Name == WorkerExecTrack && m.Tracks[i].PID == 2 {
			exec = &m.Tracks[i]
		}
	}
	if exec == nil || len(exec.Spans) != 1 {
		t.Fatalf("worker exec track not stitched: %+v", m.Tracks)
	}
	if got := exec.Spans[0].Start; got != 11*time.Millisecond {
		t.Errorf("clock offset not applied: start %v, want 11ms", got)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("fleet export does not re-parse: %v\n%s", err, buf.String())
	}
	if len(rt.Processes) != 2 {
		t.Fatalf("processes lost in round trip: %+v", rt.Processes)
	}
	names := map[string]bool{}
	for _, n := range rt.Processes {
		names[n] = true
	}
	if !names["coordinator"] || !names["worker w1"] {
		t.Fatalf("process names lost: %+v", rt.Processes)
	}
	found := false
	for i := range rt.Tracks {
		tr := &rt.Tracks[i]
		if tr.Name == WorkerExecTrack && len(tr.Spans) == 1 {
			found = true
			if ep, ok := tr.Spans[0].Arg("epoch"); !ok || ep != 1 {
				t.Errorf("epoch arg lost: %v %v", ep, ok)
			}
		}
	}
	if !found {
		t.Fatalf("worker exec span lost in round trip: %+v", rt.Tracks)
	}
}

// TestFleetRegisteredWorkerAppearsBeforeSpans: clock contact alone
// creates the process group — a freshly registered worker is visible in
// the stitched trace before it completes anything.
func TestFleetRegisteredWorkerAppearsBeforeSpans(t *testing.T) {
	f := NewFleet()
	f.SetOffset("idle-worker", 0)
	m := f.Model()
	if m.Processes[2] != "worker idle-worker" {
		t.Fatalf("registered worker missing from process table: %+v", m.Processes)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"worker idle-worker"`) {
		t.Error("export omits the idle worker's process_name metadata")
	}
}

// TestFleetJobModelFilters: a shared coordinator's per-job trace view
// carries only that job's worker spans.
func TestFleetJobModelFilters(t *testing.T) {
	f := NewFleet()
	wr := New()
	wr.Track(WorkerExecTrack).Add(CatDispatch, "jobA/s1.i0.d0.0", 0, 1)
	f.AddSegment("w1", "jobA", wr.DrainSegment())
	wr.Track(WorkerExecTrack).Add(CatDispatch, "jobB/s1.i0.d0.0", 2, 1)
	f.AddSegment("w1", "jobB", wr.DrainSegment())

	m := f.JobModel("jobA", nil)
	total := 0
	for i := range m.Tracks {
		if m.Tracks[i].PID >= 2 {
			for _, sp := range m.Tracks[i].Spans {
				total++
				if !strings.HasPrefix(sp.Name, "jobA/") {
					t.Errorf("foreign span in jobA view: %+v", sp)
				}
			}
		}
	}
	if total != 1 {
		t.Fatalf("jobA view has %d worker spans, want 1", total)
	}
}

// fleetModel hand-builds a stitched model with known per-worker busy
// structure for the diagnoser tests.
func fleetModel(busy map[string]time.Duration, units, expiries int, merge, wall time.Duration) *Model {
	m := &Model{Processes: map[int]string{1: "coordinator"}}
	coord := ModelTrack{Name: MainTrack, PID: 1, TID: 0}
	if wall > 0 {
		coord.Spans = append(coord.Spans, Span{Name: "campaign", Cat: CatPhase, Start: 0, Dur: wall})
	}
	if merge > 0 {
		coord.Spans = append(coord.Spans, Span{Name: SpanMerge, Cat: CatMerge, Start: 0, Dur: merge})
	}
	m.Tracks = append(m.Tracks, coord)
	lane := ModelTrack{Name: DispatchTrackPrefix + "w", PID: 1, TID: 1}
	for i := 0; i < units; i++ {
		lane.Spans = append(lane.Spans, Span{Name: SpanUnit, Cat: CatDispatch, Start: 0, Dur: time.Millisecond})
	}
	for i := 0; i < expiries; i++ {
		lane.Spans = append(lane.Spans, Span{Name: SpanLeaseExpired, Cat: CatDispatch, Start: 0, Dur: time.Millisecond})
	}
	m.Tracks = append(m.Tracks, lane)
	pid := 2
	for _, id := range sortedKeys(busy) {
		m.Processes[pid] = "worker " + id
		m.Tracks = append(m.Tracks, ModelTrack{
			Name: WorkerExecTrack, PID: pid, TID: 0,
			Spans: []Span{{Name: "u", Cat: CatDispatch, Start: 0, Dur: busy[id]}},
		})
		pid++
	}
	return m
}

func sortedKeys(m map[string]time.Duration) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	for i := range ks {
		for j := i + 1; j < len(ks); j++ {
			if ks[j] < ks[i] {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
	}
	return ks
}

func TestAnalyzeFleetStraggler(t *testing.T) {
	m := fleetModel(map[string]time.Duration{
		"fast": 2 * time.Millisecond, "slow": 9 * time.Millisecond,
	}, 8, 0, 0, 10*time.Millisecond)
	a := AnalyzeFleet(m)
	if len(a.Workers) != 2 || a.Units != 8 {
		t.Fatalf("counts: %+v", a)
	}
	if !strings.Contains(a.Diagnosis, "straggler worker slow") {
		t.Errorf("diagnosis misses the straggler: %q", a.Diagnosis)
	}
}

func TestAnalyzeFleetReassignmentStorm(t *testing.T) {
	m := fleetModel(map[string]time.Duration{
		"w1": 5 * time.Millisecond, "w2": 5 * time.Millisecond,
	}, 4, 6, 0, 10*time.Millisecond)
	a := AnalyzeFleet(m)
	if a.Expiries != 6 {
		t.Fatalf("expiries = %d, want 6", a.Expiries)
	}
	if !strings.Contains(a.Diagnosis, "reassignment storm") {
		t.Errorf("diagnosis misses the churn: %q", a.Diagnosis)
	}
}

func TestAnalyzeFleetMergeStall(t *testing.T) {
	m := fleetModel(map[string]time.Duration{
		"w1": 3 * time.Millisecond, "w2": 3 * time.Millisecond,
	}, 8, 0, 4*time.Millisecond, 10*time.Millisecond)
	a := AnalyzeFleet(m)
	if !strings.Contains(a.Diagnosis, "coordinator merge stall") {
		t.Errorf("diagnosis misses the merge stall: %q", a.Diagnosis)
	}
}

func TestAnalyzeFleetUndersized(t *testing.T) {
	m := fleetModel(map[string]time.Duration{
		"w1": 9 * time.Millisecond, "w2": 9 * time.Millisecond,
	}, 8, 0, 0, 10*time.Millisecond)
	a := AnalyzeFleet(m)
	if !strings.Contains(a.Diagnosis, "undersized fleet") {
		t.Errorf("diagnosis misses saturation: %q", a.Diagnosis)
	}
}

// TestAnalyzeFleetDegenerate: single-process and empty models must
// produce a verdict, never a panic, NaN, or division by zero.
func TestAnalyzeFleetDegenerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *Model
	}{
		{"empty", &Model{}},
		{"single-process", syntheticModel()},
		{"worker-only", &Model{
			Processes: map[int]string{2: "worker w1"},
			Tracks: []ModelTrack{{Name: WorkerExecTrack, PID: 2,
				Spans: []Span{{Name: "u", Cat: CatDispatch, Start: 0, Dur: time.Millisecond}}}},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := AnalyzeFleet(tc.m)
			if a.Diagnosis == "" {
				t.Error("no diagnosis")
			}
			for _, v := range []float64{a.WallSeconds, a.MergeSeconds} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("non-finite number in analysis: %+v", a)
				}
			}
			for _, ws := range a.Workers {
				if math.IsNaN(ws.Utilization) || math.IsInf(ws.Utilization, 0) {
					t.Errorf("non-finite utilization: %+v", ws)
				}
			}
			var buf bytes.Buffer
			a.WriteReport(&buf) // must not panic
			if buf.Len() == 0 {
				t.Error("empty report")
			}
		})
	}
}
