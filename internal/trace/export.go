package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Chrome trace-event export.
//
// The on-disk format is the Trace Event Format's JSON-object form:
//
//	{"displayTimeUnit":"ms","traceEvents":[ ... ]}
//
// with one "X" (complete) event per span and "M" (metadata) events
// naming the process and each track. Perfetto and chrome://tracing load
// it directly; per-worker tracks appear as named threads of one process,
// and nesting follows time containment, so the hierarchy campaign →
// phase → fsim run → merge reads as stacked slices.
//
// The writer emits JSON by hand rather than building a []any: a trace
// can hold a million spans, and marshaling through interface boxes would
// double the peak heap of the run being observed.

// WriteJSON writes the recorder's current contents as Chrome trace-event
// JSON. Safe to call mid-run (the /trace endpoint does): it sees every
// span published before the call.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return writeEmpty(w)
	}
	return r.Model().WriteJSON(w)
}

// WriteJSON writes the model in the same format (the offline half:
// parse, filter, re-export). A model with Processes set (a stitched
// fleet trace) emits one process group per pid; otherwise the legacy
// single-process layout (pid 1 named "limscan") is preserved byte for
// byte.
func (m *Model) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
	}
	multi := len(m.Processes) > 0
	pidOf := func(t *ModelTrack) int {
		if multi {
			return t.PID
		}
		return 1
	}
	if multi {
		for _, pid := range sortedPIDs(m.Processes) {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
				pid, quote(m.Processes[pid]))
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_sort_index","args":{"sort_index":%d}}`,
				pid, pid)
		}
	} else {
		sep()
		bw.WriteString(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"limscan"}}`)
	}
	for i := range m.Tracks {
		t := &m.Tracks[i]
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pidOf(t), t.TID, quote(t.Name))
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			pidOf(t), t.TID, t.TID)
	}
	for i := range m.Tracks {
		t := &m.Tracks[i]
		for j := range t.Spans {
			sp := &t.Spans[j]
			sep()
			// ts/dur are microseconds; fractional keeps sub-µs spans.
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"cat":%s,"name":%s,"ts":%s,"dur":%s`,
				pidOf(t), t.TID, quote(sp.Cat), quote(sp.Name), micros(sp.Start), micros(sp.Dur))
			if sp.Args[0].K != "" {
				bw.WriteString(`,"args":{`)
				fmt.Fprintf(bw, `%s:%d`, quote(sp.Args[0].K), sp.Args[0].V)
				if sp.Args[1].K != "" {
					fmt.Fprintf(bw, `,%s:%d`, quote(sp.Args[1].K), sp.Args[1].V)
				}
				bw.WriteByte('}')
			}
			bw.WriteByte('}')
		}
		if t.Dropped > 0 {
			// The cap is never silent: a bounded trace announces what it
			// dropped as an instant event at the end of the track.
			sep()
			fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"s":"t","name":"spans_dropped","args":{"dropped":%d}}`,
				pidOf(t), t.TID, t.Dropped)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// sortedPIDs returns the process IDs in ascending order.
func sortedPIDs(procs map[int]string) []int {
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}

func writeEmpty(w io.Writer) error {
	_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`+"\n")
	return err
}

// quote JSON-escapes a string. Track and span names are ASCII
// identifiers in practice, but a parsed-and-re-exported file could
// carry anything.
func quote(s string) string { return strconv.Quote(s) }

// micros renders a duration as fractional microseconds with nanosecond
// resolution, without float formatting surprises.
func micros(d time.Duration) string {
	ns := int64(d)
	whole := ns / 1e3
	frac := ns % 1e3
	if frac < 0 {
		// Negative spans cannot be recorded, but a parsed file is
		// hostile input; render it faithfully rather than mangle it.
		return fmt.Sprintf("%d.%03d", whole, -frac)
	}
	if frac == 0 {
		return strconv.FormatInt(whole, 10)
	}
	return fmt.Sprintf("%d.%03d", whole, frac)
}
