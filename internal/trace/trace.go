// Package trace is the execution-tracing layer of the observability
// stack: a lightweight hierarchical span recorder whose output loads in
// Perfetto / chrome://tracing and feeds the `perf trace` scaling
// diagnoser.
//
// Where the obs metrics aggregate (total busy seconds, wait histograms),
// a trace keeps the *when*: every fault-simulation batch, ordered-merge
// fold, checkpoint write and campaign phase becomes one timed span on a
// named track, so "workers starve on dispatch" and "workers stall behind
// the merge" stop being hypotheses and become visible gaps.
//
// Design contract (mirrors internal/obs):
//
//   - A nil *Recorder / nil *Track accepts every method as a no-op, so
//     the untraced hot path costs one pointer test and zero allocations.
//   - Appending a span takes no lock: each Track is owned by exactly one
//     goroutine at a time (the campaign goroutine, or one fsim worker),
//     and spans land in fixed-size chunks published with an atomic
//     counter. Only chunk allocation (every chunkSize spans) and track
//     creation take the recorder mutex.
//   - The trace is readable mid-run (the debugsrv /trace endpoint): a
//     reader snapshots the chunk list under the mutex and then reads
//     only the atomically published prefix of each chunk, so it races
//     with nothing.
//   - Recording never feeds back into simulation: spans are written
//     after batch results exist, and the deterministic ordered merge
//     never consults the recorder (see DESIGN.md §7).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span categories. The analyzer (analyze.go) keys off these, so the
// recorder and the diagnoser agree by construction.
const (
	CatPhase      = "phase"      // campaign phase brackets (obs.PhaseHook)
	CatRun        = "run"        // one fsim.Run session
	CatBatch      = "batch"      // one fault batch simulated by a worker
	CatWait       = "wait"       // a worker stalled at the merge barrier
	CatMerge      = "merge"      // the deterministic ordered merge
	CatCheckpoint = "checkpoint" // one snapshot write
	CatDispatch   = "dispatch"   // one leased work unit (distributed fan-out)
)

// Well-known track and span names.
const (
	// MainTrack is the campaign goroutine's track: phases, fsim runs,
	// merges and checkpoint writes — the single-threaded critical path.
	MainTrack = "campaign"
	// WorkerTrackPrefix prefixes per-worker tracks ("fsim worker 3").
	// The analyzer identifies worker tracks by this prefix.
	WorkerTrackPrefix = "fsim worker "
	// DispatchTrackPrefix prefixes per-remote-worker dispatch tracks
	// ("dispatch worker w1"): one lane per registered worker process,
	// one CatDispatch span per unit it completed.
	DispatchTrackPrefix = "dispatch worker "

	SpanRun        = "fsim_run"
	SpanBatch      = "batch"
	SpanWaitMerge  = "wait_merge"
	SpanMerge      = "merge"
	SpanCheckpoint = "checkpoint_write"
	SpanUnit       = "dispatch_unit"

	// WorkerExecTrack / WorkerControlTrack name the two tracks a
	// limsworker process records on: exec carries one span per leased
	// unit (named by unit key, epoch in the args), control carries
	// heartbeat round-trips. They ship to the coordinator as segments
	// and reappear under the worker's process group in the fleet trace.
	WorkerExecTrack    = "exec"
	WorkerControlTrack = "control"
	// SpanLeaseExpired marks a coordinator-side reap of a worker's
	// lease on that worker's dispatch track: the span covers the whole
	// lease the worker lost, so abandoned attempts are visible next to
	// the reassigned ones.
	SpanLeaseExpired = "lease_expired"
)

// KV is one integer span argument (batch index, fault count, bytes...).
// Fixed-size and inline in Span so a span never allocates. The json
// tags serve the segment wire form (segment.go); the Perfetto export
// does not use them.
type KV struct {
	K string `json:"k"`
	V int64  `json:"v"`
}

// Span is one completed timed operation. Start is relative to the
// recorder's zero (monotonic), so spans from different tracks share one
// timeline.
type Span struct {
	Name  string
	Cat   string
	Start time.Duration
	Dur   time.Duration
	Args  [2]KV // unused slots have empty keys
}

// chunkSize is the span capacity of one track chunk. Spans within a
// chunk are appended lock-free; a new chunk every chunkSize spans takes
// one brief mutex acquisition.
const chunkSize = 1024

// DefaultMaxSpans caps each track's span count (~64 MiB of spans per
// track at the Span size). Past the cap spans are counted, not stored,
// and the exporter reports the drop — a bounded trace that says it is
// bounded beats an unbounded one that OOMs the campaign.
const DefaultMaxSpans = 1 << 20

type chunk struct {
	n     atomic.Int64 // published span count, <= chunkSize
	spans [chunkSize]Span
}

// Track is one named horizontal lane of the trace. Appends must come
// from a single goroutine at a time (enforced by convention: each fsim
// worker owns its track for the duration of a sharded run, the campaign
// goroutine owns MainTrack); reads may come from anywhere, any time.
type Track struct {
	r    *Recorder
	name string
	tid  int

	mu      sync.Mutex // guards chunks growth; appends within a chunk are lock-free
	chunks  []*chunk
	cur     *chunk
	total   atomic.Int64 // published spans across all chunks
	dropped atomic.Int64

	// Drain cursor (segment shipping): how many spans and drops have
	// already been handed out by DrainSegment. Guarded by drainMu so
	// concurrent drains (result submission racing the final flush)
	// never double-ship a span.
	drainMu      sync.Mutex
	drained      int
	drainedDrops int64
}

// Recorder owns the trace: the time base and the track set.
type Recorder struct {
	t0       time.Time
	maxSpans int64

	mu     sync.Mutex
	byName map[string]*Track
	order  []*Track

	// open maps a phase name to its start time (obs.PhaseHook state).
	// Phase brackets are rare (a handful per campaign), so a mutex is
	// fine here.
	openMu sync.Mutex
	open   map[string]time.Duration

	started atomic.Bool // first phase span opened (readiness signal)
}

// New returns a Recorder whose timeline starts now. The MainTrack is
// created eagerly so it is always track 0 in the export.
func New() *Recorder {
	r := &Recorder{
		t0:       time.Now(),
		maxSpans: DefaultMaxSpans,
		byName:   make(map[string]*Track),
		open:     make(map[string]time.Duration),
	}
	r.Track(MainTrack)
	return r
}

// SetMaxSpans overrides the per-track span cap (testing and huge
// campaigns). Zero or negative restores the default. Call before
// recording starts.
func (r *Recorder) SetMaxSpans(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	r.maxSpans = int64(n)
}

// Now returns the current time on the recorder's timeline. Span start
// times come from here so every track shares one clock.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.t0)
}

// Rel converts an absolute timestamp (captured with time.Now by code
// that does its own timing, e.g. the fsim worker bookkeeping) onto the
// recorder's timeline.
func (r *Recorder) Rel(t time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return t.Sub(r.t0)
}

// Started reports whether the first phase span has opened — the
// readiness contract behind the debugsrv /readyz endpoint: a campaign
// that opened its first phase has finished flag parsing, circuit
// loading and fault-universe construction, and is doing real work.
func (r *Recorder) Started() bool {
	return r != nil && r.started.Load()
}

// Track returns the named track, creating it on first use. Safe for
// concurrent use; the returned handle is what the owning goroutine
// appends through.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := &Track{r: r, name: name, tid: len(r.order)}
	r.byName[name] = t
	r.order = append(r.order, t)
	return t
}

// Name returns the track's name ("" for nil).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Add appends one completed span. Lock-free except when the current
// chunk is full. Must be called only by the track's owning goroutine.
func (t *Track) Add(cat, name string, start, dur time.Duration, args ...KV) {
	if t == nil {
		return
	}
	if t.total.Load() >= t.r.maxSpans {
		t.dropped.Add(1)
		return
	}
	cur := t.cur
	if cur == nil || cur.n.Load() == chunkSize {
		cur = &chunk{}
		t.mu.Lock()
		t.chunks = append(t.chunks, cur)
		t.mu.Unlock()
		t.cur = cur
	}
	n := cur.n.Load()
	sp := &cur.spans[n]
	sp.Name, sp.Cat, sp.Start, sp.Dur = name, cat, start, dur
	sp.Args = [2]KV{}
	for i := 0; i < len(args) && i < 2; i++ {
		sp.Args[i] = args[i]
	}
	// Publish: the atomic store orders the field writes above before any
	// reader that loads n — the mid-run /trace download races with
	// nothing.
	cur.n.Store(n + 1)
	t.total.Add(1)
}

// Len returns the published span count.
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	return int(t.total.Load())
}

// Dropped returns the number of spans lost to the per-track cap.
func (t *Track) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped.Load())
}

// snapshotSpans copies the published spans (safe mid-run).
func (t *Track) snapshotSpans() []Span {
	t.mu.Lock()
	chunks := make([]*chunk, len(t.chunks))
	copy(chunks, t.chunks)
	t.mu.Unlock()
	var out []Span
	for _, c := range chunks {
		n := c.n.Load()
		out = append(out, c.spans[:n]...)
	}
	return out
}

// PhaseStart implements obs.PhaseHook: attach the recorder with
// Campaign.SetPhaseHook (or obs.PhaseHooks to combine it with the
// profiler) and every StartPhase/End bracket lands on MainTrack as a
// CatPhase span.
func (r *Recorder) PhaseStart(name string) {
	if r == nil {
		return
	}
	r.started.Store(true)
	now := r.Now()
	r.openMu.Lock()
	r.open[name] = now
	r.openMu.Unlock()
}

// PhaseEnd implements obs.PhaseHook. Ends without a matching start are
// ignored (the hook contract).
func (r *Recorder) PhaseEnd(name string) {
	if r == nil {
		return
	}
	now := r.Now()
	r.openMu.Lock()
	start, ok := r.open[name]
	if ok {
		delete(r.open, name)
	}
	r.openMu.Unlock()
	if !ok {
		return
	}
	r.Track(MainTrack).Add(CatPhase, name, start, now-start)
}

// tracks snapshots the track list.
func (r *Recorder) tracks() []*Track {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Track, len(r.order))
	copy(out, r.order)
	return out
}

// Model converts the recorder's current contents into the analyzer's
// offline form — the same structure Parse builds from a trace file, so
// in-process analysis (cmd/benchfsim) and file analysis (perf trace)
// share one code path.
func (r *Recorder) Model() *Model {
	if r == nil {
		return &Model{}
	}
	m := &Model{}
	for _, t := range r.tracks() {
		m.Tracks = append(m.Tracks, ModelTrack{
			Name:    t.name,
			TID:     t.tid,
			Dropped: t.Dropped(),
			Spans:   t.snapshotSpans(),
		})
	}
	return m
}
