// Segment shipping and fleet stitching: the cross-process half of the
// tracing layer.
//
// A distributed campaign runs spans in many processes. Each limsworker
// records on its own Recorder exactly as a local run would, and with
// every result submission drains the spans recorded since the last
// drain into a Segment — a small JSON-serializable increment — which
// rides the existing dispatch protocol back to the coordinator. The
// coordinator holds a Fleet: the coordinator's own Recorder plus one
// buffered process group per worker, clock-aligned by the offset
// sampled at register/heartbeat (see DESIGN.md §9), and renders the
// whole thing as one multi-process Perfetto trace.
//
// Nothing here touches the recording hot path: draining snapshots the
// published spans exactly like a mid-run /trace download does, and the
// fleet's maps are guarded by one mutex touched only at segment-arrival
// rate (per unit, not per event).
package trace

import (
	"sync"
	"time"
)

// SegmentSpan is one span on the wire. Times stay in nanoseconds on the
// *worker's* trace clock; the coordinator applies the clock offset when
// it stitches.
type SegmentSpan struct {
	Name    string `json:"name"`
	Cat     string `json:"cat"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Args    []KV   `json:"args,omitempty"`
}

// SegmentTrack is the increment of one named track.
type SegmentTrack struct {
	Name    string        `json:"name"`
	Dropped int64         `json:"dropped,omitempty"` // drop-count delta since the last drain
	Spans   []SegmentSpan `json:"spans,omitempty"`
}

// Segment is everything a recorder produced since its last drain.
type Segment struct {
	Tracks []SegmentTrack `json:"tracks,omitempty"`
}

// Empty reports whether the segment carries nothing worth shipping.
func (s *Segment) Empty() bool {
	return s == nil || len(s.Tracks) == 0
}

// DrainSegment returns the spans (and cap-drop counts) recorded since
// the previous DrainSegment call, advancing the drain cursor. Tracks
// with nothing new are omitted; a recorder with nothing new anywhere
// returns an empty segment. Nil-safe. Draining is safe concurrently
// with recording — it reads only the atomically published prefix — but
// two concurrent drains serialize on a per-track mutex so every span is
// shipped exactly once.
func (r *Recorder) DrainSegment() Segment {
	if r == nil {
		return Segment{}
	}
	var seg Segment
	for _, t := range r.tracks() {
		t.drainMu.Lock()
		spans := t.snapshotSpans()
		fresh := spans[t.drained:]
		drops := t.dropped.Load() - t.drainedDrops
		t.drained = len(spans)
		t.drainedDrops += drops
		t.drainMu.Unlock()
		if len(fresh) == 0 && drops == 0 {
			continue
		}
		st := SegmentTrack{Name: t.name, Dropped: drops}
		for _, sp := range fresh {
			ss := SegmentSpan{
				Name:    sp.Name,
				Cat:     sp.Cat,
				StartNS: int64(sp.Start),
				DurNS:   int64(sp.Dur),
			}
			for _, kv := range sp.Args {
				if kv.K != "" {
					ss.Args = append(ss.Args, kv)
				}
			}
			st.Spans = append(st.Spans, ss)
		}
		seg.Tracks = append(seg.Tracks, st)
	}
	return seg
}

// fleetTrack buffers one worker track's stitched spans. jobs runs
// parallel to spans: the job ID each span arrived under, so a per-job
// view (/trace/{id} on a shared coordinator) can filter.
type fleetTrack struct {
	name    string
	dropped int64
	spans   []Span
	jobs    []string
}

// fleetWorker is one worker process group in the stitched trace.
type fleetWorker struct {
	pid    int
	offset time.Duration // coordinator clock − worker clock
	tracks map[string]*fleetTrack
	order  []string
}

// Fleet stitches the coordinator's recorder and per-worker span
// segments into one multi-process trace model. All methods are
// nil-safe and safe for concurrent use.
type Fleet struct {
	coord    *Recorder
	maxSpans int

	mu      sync.Mutex
	workers map[string]*fleetWorker
	order   []string
}

// NewFleet returns a Fleet whose coordinator recorder starts now.
// The coordinator is process 1 in the export (matching the
// single-process trace layout); workers become processes 2, 3, ... in
// first-contact order.
func NewFleet() *Fleet {
	return &Fleet{
		coord:    New(),
		maxSpans: DefaultMaxSpans,
		workers:  make(map[string]*fleetWorker),
	}
}

// Coord returns the coordinator-side recorder (lease/reap/merge events
// land here). Never nil on a non-nil fleet.
func (f *Fleet) Coord() *Recorder {
	if f == nil {
		return nil
	}
	return f.coord
}

// worker returns the named worker's process group, creating it on
// first contact. Caller holds f.mu.
func (f *Fleet) worker(id string) *fleetWorker {
	w, ok := f.workers[id]
	if !ok {
		w = &fleetWorker{
			pid:    2 + len(f.order),
			tracks: make(map[string]*fleetTrack),
		}
		f.workers[id] = w
		f.order = append(f.order, id)
	}
	return w
}

// SetOffset records the clock offset (coordinator trace clock − worker
// trace clock) for a worker, creating its process group if this is
// first contact — so a registered worker appears in the fleet trace
// even before it ships a span. Later samples overwrite earlier ones:
// each is bounded by that exchange's RTT, and refreshing keeps drift
// bounded too.
func (f *Fleet) SetOffset(workerID string, offset time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.worker(workerID).offset = offset
	f.mu.Unlock()
}

// Offset returns the current clock offset recorded for a worker.
func (f *Fleet) Offset(workerID string) time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[workerID]; ok {
		return w.offset
	}
	return 0
}

// AddSegment stitches one worker segment into the fleet under the
// given job ID, shifting span starts by the worker's current clock
// offset onto the coordinator timeline. Buffering honors the same
// per-track span cap as a recorder: past the cap spans count as
// dropped.
func (f *Fleet) AddSegment(workerID, jobID string, seg Segment) {
	if f == nil || seg.Empty() {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.worker(workerID)
	for _, st := range seg.Tracks {
		ft, ok := w.tracks[st.Name]
		if !ok {
			ft = &fleetTrack{name: st.Name}
			w.tracks[st.Name] = ft
			w.order = append(w.order, st.Name)
		}
		ft.dropped += st.Dropped
		for _, ss := range st.Spans {
			if len(ft.spans) >= f.maxSpans {
				ft.dropped++
				continue
			}
			sp := Span{
				Name:  ss.Name,
				Cat:   ss.Cat,
				Start: time.Duration(ss.StartNS) + w.offset,
				Dur:   time.Duration(ss.DurNS),
			}
			for i := 0; i < len(ss.Args) && i < 2; i++ {
				sp.Args[i] = ss.Args[i]
			}
			ft.spans = append(ft.spans, sp)
			ft.jobs = append(ft.jobs, jobID)
		}
	}
}

// Workers returns the worker IDs in first-contact order.
func (f *Fleet) Workers() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Model renders the whole fleet — coordinator tracks as process 1 plus
// one process group per worker — as a multi-process trace model.
func (f *Fleet) Model() *Model {
	if f == nil {
		return &Model{}
	}
	m := f.coord.Model()
	m.Processes = map[int]string{1: "coordinator"}
	for i := range m.Tracks {
		m.Tracks[i].PID = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tid := 0
	for _, id := range f.order {
		w := f.workers[id]
		m.Processes[w.pid] = "worker " + id
		for _, name := range w.order {
			ft := w.tracks[name]
			spans := make([]Span, len(ft.spans))
			copy(spans, ft.spans)
			m.Tracks = append(m.Tracks, ModelTrack{
				Name:    ft.name,
				PID:     w.pid,
				TID:     tid,
				Dropped: int(ft.dropped),
				Spans:   spans,
			})
			tid++
		}
		if len(w.order) == 0 {
			// A worker that registered but never shipped a span still
			// gets a (empty) process group: the smoke's "one process
			// group per live worker" check counts presence, not spans.
			m.Tracks = append(m.Tracks, ModelTrack{
				Name: WorkerExecTrack,
				PID:  w.pid,
				TID:  tid,
			})
			tid++
		}
	}
	return m
}

// JobModel renders one job's view of the fleet: the job's own recorder
// as the coordinator process plus only those worker spans that arrived
// under this job ID. rec may be nil (worker spans only).
func (f *Fleet) JobModel(jobID string, rec *Recorder) *Model {
	if f == nil {
		return rec.Model()
	}
	m := rec.Model()
	m.Processes = map[int]string{1: "coordinator"}
	for i := range m.Tracks {
		m.Tracks[i].PID = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tid := 0
	for _, id := range f.order {
		w := f.workers[id]
		for _, name := range w.order {
			ft := w.tracks[name]
			var spans []Span
			for i, sp := range ft.spans {
				if ft.jobs[i] == jobID {
					spans = append(spans, sp)
				}
			}
			if len(spans) == 0 {
				continue
			}
			m.Processes[w.pid] = "worker " + id
			m.Tracks = append(m.Tracks, ModelTrack{
				Name:  ft.name,
				PID:   w.pid,
				TID:   tid,
				Spans: spans,
			})
			tid++
		}
	}
	return m
}
