package trace

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// dur is a test shorthand.
func dur(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 || r.Rel(time.Now()) != 0 || r.Started() {
		t.Error("nil Recorder time methods not zero")
	}
	r.SetMaxSpans(10)
	r.PhaseStart("x")
	r.PhaseEnd("x")
	tr := r.Track("anything")
	if tr != nil {
		t.Fatal("nil Recorder returned a live track")
	}
	tr.Add(CatBatch, SpanBatch, 0, 1) // nil Track no-op
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Name() != "" {
		t.Error("nil Track accessors not zero")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if m, err := Parse(buf.Bytes()); err != nil || len(m.Tracks) != 0 {
		t.Errorf("nil Recorder export not an empty valid trace: %v, %d tracks", err, len(m.Tracks))
	}
}

func TestMainTrackIsAlwaysTIDZero(t *testing.T) {
	r := New()
	r.Track(WorkerTrackPrefix + "0")
	m := r.Model()
	if len(m.Tracks) != 2 || m.Tracks[0].Name != MainTrack || m.Tracks[0].TID != 0 {
		t.Fatalf("MainTrack not eagerly created as tid 0: %+v", m.Tracks)
	}
}

func TestRoundTrip(t *testing.T) {
	r := New()
	main := r.Track(MainTrack)
	// Whole-microsecond values survive the decimal µs encoding exactly;
	// a sub-µs span checks the fractional path.
	main.Add(CatPhase, "ts0_sim", 5*time.Microsecond, 100*time.Microsecond)
	main.Add(CatRun, SpanRun, 10*time.Microsecond, 80*time.Microsecond,
		KV{K: "workers", V: 4}, KV{K: "batches", V: 7})
	w0 := r.Track(WorkerTrackPrefix + "0")
	w0.Add(CatBatch, SpanBatch, 12*time.Microsecond, 500*time.Nanosecond, KV{K: "batch", V: 0})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("re-parse of own export failed: %v\n%s", err, buf.String())
	}

	mt := m.Track(MainTrack)
	if mt == nil {
		t.Fatalf("main track lost its name in the round trip: %+v", m.Tracks)
	}
	if len(mt.Spans) != 2 {
		t.Fatalf("main track has %d spans, want 2", len(mt.Spans))
	}
	run := mt.Spans[1]
	if run.Name != SpanRun || run.Cat != CatRun {
		t.Errorf("run span identity lost: %+v", run)
	}
	if run.Start != 10*time.Microsecond || run.Dur != 80*time.Microsecond {
		t.Errorf("run span timing changed: start %v dur %v", run.Start, run.Dur)
	}
	if w, ok := run.Arg("workers"); !ok || w != 4 {
		t.Errorf("workers arg lost: %v %v", w, ok)
	}
	if b, ok := run.Arg("batches"); !ok || b != 7 {
		t.Errorf("batches arg lost: %v %v", b, ok)
	}
	wt := m.Track(WorkerTrackPrefix + "0")
	if wt == nil || len(wt.Spans) != 1 {
		t.Fatalf("worker track lost: %+v", m.Tracks)
	}
	if wt.Spans[0].Dur != 500*time.Nanosecond {
		t.Errorf("sub-µs duration lost: %v", wt.Spans[0].Dur)
	}
}

func TestParseBareArrayForm(t *testing.T) {
	data := []byte(`[
		{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"fsim worker 1"}},
		{"ph":"X","pid":1,"tid":3,"cat":"batch","name":"batch","ts":10,"dur":5,"args":{"batch":2}}
	]`)
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	wt := m.Track("fsim worker 1")
	if wt == nil || len(wt.Spans) != 1 {
		t.Fatalf("bare-array parse: %+v", m.Tracks)
	}
}

func TestParseHostileInput(t *testing.T) {
	if _, err := Parse([]byte("not json")); err == nil {
		t.Error("garbage must not parse")
	}
	// A float-overflow timestamp is a clean error, not a crash.
	if _, err := Parse([]byte(`{"traceEvents":[{"ph":"X","tid":0,"name":"a","ts":1e999,"dur":1}]}`)); err == nil {
		t.Error("overflowing ts must error")
	}
	// Unknown event kinds and foreign fields are ignored, not fatal.
	m, err := Parse([]byte(`{"traceEvents":[
		{"ph":"B","tid":0,"name":"open-ended"},
		{"ph":"X","tid":0,"name":"b","ts":1,"dur":2,"sf":7}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m.Tracks[0].Spans); n != 1 {
		t.Errorf("want 1 span from mixed events, got %d", n)
	}
}

func TestPhaseHook(t *testing.T) {
	r := New()
	if r.Started() {
		t.Error("fresh recorder claims started")
	}
	r.PhaseStart("ts0_gen")
	if !r.Started() {
		t.Error("Started not set by first PhaseStart")
	}
	r.PhaseEnd("ts0_gen")
	r.PhaseEnd("never_started") // hook contract: ignored
	m := r.Model()
	mt := m.Track(MainTrack)
	if len(mt.Spans) != 1 || mt.Spans[0].Name != "ts0_gen" || mt.Spans[0].Cat != CatPhase {
		t.Fatalf("phase bracket did not become one span: %+v", mt.Spans)
	}
}

func TestMaxSpansCapReported(t *testing.T) {
	r := New()
	r.SetMaxSpans(10)
	w := r.Track(WorkerTrackPrefix + "0")
	for i := 0; i < 25; i++ {
		w.Add(CatBatch, SpanBatch, time.Duration(i), 1)
	}
	if w.Len() != 10 || w.Dropped() != 15 {
		t.Fatalf("cap accounting: len %d dropped %d, want 10/15", w.Len(), w.Dropped())
	}
	// The drop survives export and re-parse — a bounded trace says so.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spans_dropped") {
		t.Error("export silent about dropped spans")
	}
	m, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Track(WorkerTrackPrefix + "0").Dropped; got != 15 {
		t.Errorf("dropped count lost in round trip: %d", got)
	}
	if a := Analyze(m); a.DroppedSpans != 15 {
		t.Errorf("analysis DroppedSpans = %d, want 15", a.DroppedSpans)
	}
}

// TestConcurrentAppendAndSnapshot is the mid-run download contract under
// the race detector: per-track single writers append while a reader
// repeatedly exports, and every export must be a valid, consistent
// prefix.
func TestConcurrentAppendAndSnapshot(t *testing.T) {
	r := New()
	const workers = 4
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wt := r.Track(WorkerTrackPrefix + strconv.Itoa(w))
			for i := 0; i < perWorker; i++ {
				wt.Add(CatBatch, SpanBatch, time.Duration(i), 1, KV{K: "batch", V: int64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(buf.Bytes()); err != nil {
			t.Fatalf("mid-run export invalid: %v", err)
		}
		select {
		case <-done:
			m := r.Model()
			for w := 0; w < workers; w++ {
				wt := m.Track(WorkerTrackPrefix + strconv.Itoa(w))
				if wt == nil || len(wt.Spans) != perWorker {
					t.Fatalf("worker %d final span count wrong: %+v", w, wt)
				}
			}
			return
		default:
		}
	}
}

// syntheticModel builds a trace with known time structure:
//
//	wall 10ms; one sharded run window [2,8) at 2 workers;
//	worker 0: busy [2,5), merge-stall [5,7.5)   → starve 0.5ms
//	worker 1: busy [2,7), merge-stall [7,7.5)   → starve 0.5ms
//	merge [7.5,8), checkpoint [8.5,9) on the campaign track.
//
// Serial = 10-6 = 4ms; P = 8ms busy; serial fraction 1/3; max speedup
// 3x; balanced at 2 workers 1.5x; measured 12/10 = 1.2x.
func syntheticModel() *Model {
	return &Model{Tracks: []ModelTrack{
		{Name: MainTrack, TID: 0, Spans: []Span{
			{Name: "search", Cat: CatPhase, Start: 0, Dur: dur(10)},
			{Name: SpanRun, Cat: CatRun, Start: dur(2), Dur: dur(6),
				Args: [2]KV{{K: "workers", V: 2}, {K: "batches", V: 4}}},
			{Name: SpanMerge, Cat: CatMerge, Start: dur(7.5), Dur: dur(0.5),
				Args: [2]KV{{K: "batches", V: 4}}},
			{Name: SpanCheckpoint, Cat: CatCheckpoint, Start: dur(8.5), Dur: dur(0.5),
				Args: [2]KV{{K: "bytes", V: 4096}}},
		}},
		{Name: WorkerTrackPrefix + "0", TID: 1, Spans: []Span{
			{Name: SpanBatch, Cat: CatBatch, Start: dur(2), Dur: dur(3)},
			{Name: SpanWaitMerge, Cat: CatWait, Start: dur(5), Dur: dur(2.5)},
		}},
		{Name: WorkerTrackPrefix + "1", TID: 2, Spans: []Span{
			{Name: SpanBatch, Cat: CatBatch, Start: dur(2), Dur: dur(5)},
			{Name: SpanWaitMerge, Cat: CatWait, Start: dur(7), Dur: dur(0.5)},
		}},
	}}
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	a := Analyze(syntheticModel())
	approx(t, "WallSeconds", a.WallSeconds, 0.010)
	if a.Runs != 1 || a.ShardedRuns != 1 || a.Workers != 2 {
		t.Errorf("run counts: %d runs, %d sharded, %d workers", a.Runs, a.ShardedRuns, a.Workers)
	}
	approx(t, "SerialSeconds", a.SerialSeconds, 0.004)
	approx(t, "ParallelBusy", a.ParallelBusy, 0.008)
	approx(t, "SerialFraction", a.SerialFraction, 1.0/3.0)
	approx(t, "MaxSpeedup", a.MaxSpeedup, 3.0)
	approx(t, "BalancedSpeedup", a.BalancedSpeedup, 1.5)
	approx(t, "MeasuredSpeedup", a.MeasuredSpeedup, 1.2)
	approx(t, "MergeSeconds", a.MergeSeconds, 0.0005)
	approx(t, "CheckpointSeconds", a.CheckpointSeconds, 0.0005)
	approx(t, "BusySeconds", a.BusySeconds, 0.008)
	approx(t, "MergeStallSeconds", a.MergeStallSeconds, 0.003)
	approx(t, "StarveSeconds", a.StarveSeconds, 0.001)

	if len(a.WorkerStats) != 2 {
		t.Fatalf("worker stats: %+v", a.WorkerStats)
	}
	w0 := a.WorkerStats[0]
	approx(t, "w0.Busy", w0.BusySeconds, 0.003)
	approx(t, "w0.Wait", w0.WaitSeconds, 0.0025)
	approx(t, "w0.Starve", w0.StarveSeconds, 0.0005)
	approx(t, "w0.InRun", w0.InRunSeconds, 0.006)
	approx(t, "w0.Utilization", w0.Utilization, 0.5)

	// The dominant limiter at these numbers is the 4ms serial section.
	if !strings.Contains(a.Diagnosis, "serial sections") {
		t.Errorf("diagnosis misses the serial bottleneck: %q", a.Diagnosis)
	}
	if !strings.Contains(a.Diagnosis, "Amdahl ceiling 3.00x") {
		t.Errorf("diagnosis misses the Amdahl ceiling: %q", a.Diagnosis)
	}
}

func TestAnalyzeDominantMergeStall(t *testing.T) {
	// Tiny serial time, huge barrier stall: worker 1 does all the work
	// while worker 0 stalls — the verdict must blame the barrier.
	m := &Model{Tracks: []ModelTrack{
		{Name: MainTrack, TID: 0, Spans: []Span{
			{Name: SpanRun, Cat: CatRun, Start: 0, Dur: dur(10),
				Args: [2]KV{{K: "workers", V: 2}}},
		}},
		{Name: WorkerTrackPrefix + "0", TID: 1, Spans: []Span{
			{Name: SpanBatch, Cat: CatBatch, Start: 0, Dur: dur(1)},
			{Name: SpanWaitMerge, Cat: CatWait, Start: dur(1), Dur: dur(9)},
		}},
		{Name: WorkerTrackPrefix + "1", TID: 2, Spans: []Span{
			{Name: SpanBatch, Cat: CatBatch, Start: 0, Dur: dur(10)},
		}},
	}}
	a := Analyze(m)
	if !strings.Contains(a.Diagnosis, "merge-barrier stall") {
		t.Errorf("diagnosis misses the barrier: %q", a.Diagnosis)
	}
}

func TestAnalyzeSerialOnlyTrace(t *testing.T) {
	m := &Model{Tracks: []ModelTrack{
		{Name: MainTrack, TID: 0, Spans: []Span{
			{Name: SpanRun, Cat: CatRun, Start: 0, Dur: dur(5),
				Args: [2]KV{{K: "workers", V: 1}}},
		}},
	}}
	a := Analyze(m)
	if a.ShardedRuns != 0 || a.Runs != 1 {
		t.Errorf("counts: %d/%d", a.Runs, a.ShardedRuns)
	}
	if !strings.Contains(a.Diagnosis, "serial path") {
		t.Errorf("serial-only diagnosis: %q", a.Diagnosis)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(&Model{})
	if a.WallSeconds != 0 || a.Diagnosis == "" {
		t.Errorf("empty analysis: %+v", a)
	}
}

func TestCriticalPathNesting(t *testing.T) {
	// campaign [0,10] contains a [1,4] (which contains b [2,3]) and
	// c [5,7]: exclusive times campaign 5, a 2, b 1, c 2.
	m := &ModelTrack{Name: MainTrack, Spans: []Span{
		{Name: "campaign", Start: 0, Dur: dur(10)},
		{Name: "a", Start: dur(1), Dur: dur(3)},
		{Name: "b", Start: dur(2), Dur: dur(1)},
		{Name: "c", Start: dur(5), Dur: dur(2)},
	}}
	got := map[string]float64{}
	for _, p := range criticalPath(m) {
		got[p.Name] = p.Seconds
	}
	approx(t, "campaign excl", got["campaign"], 0.005)
	approx(t, "a excl", got["a"], 0.002)
	approx(t, "b excl", got["b"], 0.001)
	approx(t, "c excl", got["c"], 0.002)
}

func TestWriteReportMentionsTheNumbers(t *testing.T) {
	var buf bytes.Buffer
	Analyze(syntheticModel()).WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{
		"fsim worker 0", "fsim worker 1", "merge-stall",
		"serial fraction 0.333", "max speedup 3.00x", "dominant limiter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkAddSpan measures the traced hot path (lock-free append).
func BenchmarkAddSpan(b *testing.B) {
	r := New()
	r.SetMaxSpans(1 << 30)
	w := r.Track(WorkerTrackPrefix + "0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(CatBatch, SpanBatch, time.Duration(i), 1, KV{K: "batch", V: int64(i)})
	}
}

// BenchmarkNilPath measures the untraced hot path: one nil check, no
// allocation — the zero-overhead contract the fsim instrumentation
// relies on.
func BenchmarkNilPath(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r != nil {
			b.Fatal("unreachable")
		}
	}
}
