package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// The scaling diagnoser: turns a span timeline into the numbers that
// decide whether sharded fault simulation is worth its workers — and
// when it is not, which of the three suspects (serial sections between
// runs, the merge barrier, dispatch starvation inside runs) is eating
// the speedup.
//
// Vocabulary (all derived from recorded spans, nothing sampled):
//
//   - busy: time a worker spent simulating batches (CatBatch spans).
//   - merge stall: time a worker sat at the barrier after its last
//     batch while slower siblings finished (CatWait spans) — the
//     shard-imbalance cost.
//   - starvation: time inside a sharded run a worker was neither
//     simulating nor waiting at the barrier — dispatch gaps.
//   - serial: wall time outside every sharded fsim run — TS0
//     generation, ATPG classification, Procedure 1 insertion, merges,
//     checkpoint writes, and runs that took the serial path.
//
// The Amdahl estimate treats the sharded-run windows as the
// parallelizable fraction: with S = serial seconds and P = total busy
// seconds inside sharded windows, the projected ceiling is
// (S+P)/S regardless of worker count, and the "perfectly balanced at W
// workers" projection is (S+P)/(S+P/W).

// WorkerStat is one worker track's accounting.
type WorkerStat struct {
	Name string `json:"name"`
	// Batches is the number of batch spans recorded on this track.
	Batches int `json:"batches"`
	// BusySeconds is total simulate time; WaitSeconds is merge-barrier
	// stall; StarveSeconds is in-run idle not explained by either.
	BusySeconds   float64 `json:"busy_seconds"`
	WaitSeconds   float64 `json:"wait_seconds"`
	StarveSeconds float64 `json:"starve_seconds"`
	// InRunSeconds is the total sharded-run window time this worker was
	// part of; Utilization is Busy/InRun.
	InRunSeconds float64 `json:"in_run_seconds"`
	Utilization  float64 `json:"utilization"`
}

// PathSlice is one row of the critical-path breakdown: exclusive time
// attributed to a span name on the campaign track.
type PathSlice struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int     `json:"count"`
}

// Analysis is the scaling diagnosis of one trace.
type Analysis struct {
	WallSeconds float64 `json:"wall_seconds"`

	Runs        int `json:"runs"`
	ShardedRuns int `json:"sharded_runs"`
	// Workers is the maximum worker count observed on a sharded run.
	Workers int `json:"workers"`

	WorkerStats []WorkerStat `json:"worker_stats,omitempty"`

	// Aggregates across workers.
	BusySeconds       float64 `json:"busy_seconds"`
	MergeStallSeconds float64 `json:"merge_stall_seconds"`
	StarveSeconds     float64 `json:"starve_seconds"`
	MergeSeconds      float64 `json:"merge_seconds"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`

	// Amdahl decomposition: Wall = Serial + sharded-run windows;
	// ParallelBusy is worker busy time inside those windows.
	SerialSeconds  float64 `json:"serial_seconds"`
	ParallelBusy   float64 `json:"parallel_busy_seconds"`
	SerialFraction float64 `json:"serial_fraction"`
	// MaxSpeedup is the W→∞ ceiling (S+P)/S; BalancedSpeedup the
	// perfectly balanced projection at the observed worker count;
	// MeasuredSpeedup the serial-equivalent (S+P) over the actual wall.
	MaxSpeedup      float64 `json:"max_speedup"`
	BalancedSpeedup float64 `json:"balanced_speedup"`
	MeasuredSpeedup float64 `json:"measured_speedup"`

	// CriticalPath is the exclusive-time breakdown of the campaign
	// track, largest first.
	CriticalPath []PathSlice `json:"critical_path,omitempty"`

	// DroppedSpans sums every track's drop counter (nonzero means the
	// numbers above undercount).
	DroppedSpans int `json:"dropped_spans,omitempty"`

	// Diagnosis is the one-line verdict naming the dominant scaling
	// limiter.
	Diagnosis string `json:"diagnosis"`
}

// window is a [start,end) interval on the shared timeline.
type window struct{ start, end time.Duration }

func overlap(a, b window) time.Duration {
	lo, hi := a.start, a.end
	if b.start > lo {
		lo = b.start
	}
	if b.end < hi {
		hi = b.end
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Analyze computes the scaling diagnosis of a trace.
func Analyze(m *Model) *Analysis {
	a := &Analysis{}
	var wall time.Duration
	for _, t := range m.Tracks {
		a.DroppedSpans += t.Dropped
		for i := range t.Spans {
			if e := t.Spans[i].End(); e > wall {
				wall = e
			}
		}
	}
	a.WallSeconds = wall.Seconds()

	// Sharded-run windows come from the campaign track's CatRun spans.
	var sharded []window
	main := m.Track(MainTrack)
	if main != nil {
		for i := range main.Spans {
			sp := &main.Spans[i]
			switch sp.Cat {
			case CatRun:
				a.Runs++
				w, _ := sp.Arg("workers")
				if w > 1 {
					a.ShardedRuns++
					sharded = append(sharded, window{sp.Start, sp.End()})
					if int(w) > a.Workers {
						a.Workers = int(w)
					}
				}
			case CatMerge:
				a.MergeSeconds += sp.Dur.Seconds()
			case CatCheckpoint:
				a.CheckpointSeconds += sp.Dur.Seconds()
			}
		}
		a.CriticalPath = criticalPath(main)
	}
	sort.Slice(sharded, func(i, j int) bool { return sharded[i].start < sharded[j].start })
	var shardedTotal time.Duration
	for _, w := range sharded {
		shardedTotal += w.end - w.start
	}

	// Per-worker accounting over the sharded windows.
	for _, t := range m.Tracks {
		if !strings.HasPrefix(t.Name, WorkerTrackPrefix) {
			continue
		}
		ws := WorkerStat{Name: t.Name}
		var busyInRuns time.Duration
		participated := make([]bool, len(sharded))
		// Every number in WorkerStat is clipped to the sharded windows:
		// the serial path also records its batches on "fsim worker 0",
		// and counting those against sharded-run wall time would push
		// utilization past 100%.
		// Spans on a track are recorded in start order (single owner,
		// monotonic clock); windows are sorted, so one cursor suffices.
		wi := 0
		for i := range t.Spans {
			sp := &t.Spans[i]
			if sp.Cat != CatBatch && sp.Cat != CatWait {
				continue
			}
			for wi < len(sharded) && sharded[wi].end <= sp.Start {
				wi++
			}
			var inWindows time.Duration
			for j := wi; j < len(sharded) && sharded[j].start < sp.End(); j++ {
				if ov := overlap(window{sp.Start, sp.End()}, sharded[j]); ov > 0 {
					participated[j] = true
					inWindows += ov
				}
			}
			if inWindows == 0 {
				continue
			}
			if sp.Cat == CatBatch {
				ws.Batches++
				ws.BusySeconds += inWindows.Seconds()
				busyInRuns += inWindows
			} else {
				ws.WaitSeconds += inWindows.Seconds()
			}
		}
		var inRun time.Duration
		for j, p := range participated {
			if p {
				inRun += sharded[j].end - sharded[j].start
			}
		}
		ws.InRunSeconds = inRun.Seconds()
		if starve := ws.InRunSeconds - ws.BusySeconds - ws.WaitSeconds; starve > 0 {
			ws.StarveSeconds = starve
		}
		if ws.InRunSeconds > 0 {
			ws.Utilization = ws.BusySeconds / ws.InRunSeconds
		}
		a.BusySeconds += ws.BusySeconds
		a.MergeStallSeconds += ws.WaitSeconds
		a.StarveSeconds += ws.StarveSeconds
		a.ParallelBusy += busyInRuns.Seconds()
		a.WorkerStats = append(a.WorkerStats, ws)
	}
	sort.Slice(a.WorkerStats, func(i, j int) bool { return a.WorkerStats[i].Name < a.WorkerStats[j].Name })

	// Amdahl decomposition.
	a.SerialSeconds = a.WallSeconds - shardedTotal.Seconds()
	if a.SerialSeconds < 0 {
		a.SerialSeconds = 0
	}
	s, p := a.SerialSeconds, a.ParallelBusy
	if s+p > 0 {
		a.SerialFraction = s / (s + p)
	}
	if s > 0 {
		a.MaxSpeedup = (s + p) / s
		if a.Workers > 1 {
			a.BalancedSpeedup = (s + p) / (s + p/float64(a.Workers))
		}
	}
	if a.WallSeconds > 0 {
		a.MeasuredSpeedup = (s + p) / a.WallSeconds
	}
	a.Diagnosis = a.diagnose()
	return a
}

// diagnose names the dominant scaling limiter. The candidates are the
// seconds each suspect costs relative to a perfectly parallel run; the
// largest one is the verdict.
func (a *Analysis) diagnose() string {
	if a.Runs == 0 {
		return "no fsim runs in trace (nothing to diagnose)"
	}
	if a.ShardedRuns == 0 {
		return "every fsim run took the serial path (workers=1); nothing was parallel"
	}
	type cost struct {
		name    string
		seconds float64
		detail  string
	}
	costs := []cost{
		{"serial sections", a.SerialSeconds,
			"time outside sharded runs (TS0, classify, Procedure 1, merges, checkpoints)"},
		{"merge-barrier stall", a.MergeStallSeconds,
			"workers idle at the end-of-run barrier while stragglers finish (shard imbalance)"},
		{"dispatch starvation", a.StarveSeconds,
			"workers idle mid-run between batch claims"},
	}
	sort.SliceStable(costs, func(i, j int) bool { return costs[i].seconds > costs[j].seconds })
	top := costs[0]
	verdict := fmt.Sprintf("dominant limiter: %s (%.2fs) — %s; Amdahl ceiling %.2fx",
		top.name, top.seconds, top.detail, a.MaxSpeedup)
	if a.Workers > 1 && a.MeasuredSpeedup > 0 && a.BalancedSpeedup > a.MeasuredSpeedup*1.25 {
		verdict += fmt.Sprintf("; measured %.2fx vs %.2fx balanced projection at %d workers",
			a.MeasuredSpeedup, a.BalancedSpeedup, a.Workers)
	}
	return verdict
}

// criticalPath decomposes the campaign track into exclusive time per
// span name. The campaign track is the run's single-threaded spine —
// every phase, fsim run, merge and checkpoint write happens on it — so
// exclusive time there IS the critical-path breakdown: a span's own
// duration minus the spans nested inside it by time containment.
func criticalPath(t *ModelTrack) []PathSlice {
	n := len(t.Spans)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by start ascending; ties: longer first (parents before
	// children).
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := &t.Spans[idx[a]], &t.Spans[idx[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.Dur > sb.Dur
	})
	excl := make(map[string]*PathSlice)
	add := func(name string, d time.Duration) {
		p := excl[name]
		if p == nil {
			p = &PathSlice{Name: name}
			excl[name] = p
		}
		p.Seconds += d.Seconds()
		p.Count++
	}
	type frame struct {
		i        int
		children time.Duration
	}
	var stack []frame
	pop := func() {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sp := &t.Spans[f.i]
		own := sp.Dur - f.children
		if own < 0 {
			own = 0
		}
		add(sp.Name, own)
		if len(stack) > 0 {
			stack[len(stack)-1].children += sp.Dur
		}
	}
	for _, i := range idx {
		sp := &t.Spans[i]
		for len(stack) > 0 && t.Spans[stack[len(stack)-1].i].End() <= sp.Start {
			pop()
		}
		stack = append(stack, frame{i: i})
	}
	for len(stack) > 0 {
		pop()
	}
	out := make([]PathSlice, 0, len(excl))
	for _, p := range excl {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteReport prints the one-screen human diagnosis.
func (a *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "trace: %.3fs wall, %d fsim runs (%d sharded", a.WallSeconds, a.Runs, a.ShardedRuns)
	if a.Workers > 0 {
		fmt.Fprintf(w, ", %d workers", a.Workers)
	}
	fmt.Fprintf(w, ")\n")
	if a.DroppedSpans > 0 {
		fmt.Fprintf(w, "WARNING: %d spans dropped at the per-track cap; totals undercount\n", a.DroppedSpans)
	}
	if len(a.WorkerStats) > 0 {
		fmt.Fprintf(w, "per-worker (within sharded runs):\n")
		fmt.Fprintf(w, "  %-16s %8s %10s %12s %12s %6s\n",
			"worker", "batches", "busy", "merge-stall", "starvation", "util")
		for _, ws := range a.WorkerStats {
			fmt.Fprintf(w, "  %-16s %8d %9.3fs %11.3fs %11.3fs %5.0f%%\n",
				ws.Name, ws.Batches, ws.BusySeconds, ws.WaitSeconds, ws.StarveSeconds,
				ws.Utilization*100)
		}
		fmt.Fprintf(w, "totals: busy %.3fs, merge-stall %.3fs, starvation %.3fs, merge %.3fs, checkpoint %.3fs\n",
			a.BusySeconds, a.MergeStallSeconds, a.StarveSeconds, a.MergeSeconds, a.CheckpointSeconds)
	}
	if len(a.CriticalPath) > 0 {
		fmt.Fprintf(w, "critical path (campaign track, exclusive time):\n")
		rows := a.CriticalPath
		if len(rows) > 8 {
			rows = rows[:8]
		}
		for _, p := range rows {
			pct := 0.0
			if a.WallSeconds > 0 {
				pct = p.Seconds / a.WallSeconds * 100
			}
			fmt.Fprintf(w, "  %-20s %9.3fs  %5.1f%%  (%d span(s))\n", p.Name, p.Seconds, pct, p.Count)
		}
	}
	fmt.Fprintf(w, "serial %.3fs + parallel work %.3fs: serial fraction %.3f\n",
		a.SerialSeconds, a.ParallelBusy, a.SerialFraction)
	if a.MaxSpeedup > 0 {
		fmt.Fprintf(w, "Amdahl: max speedup %.2fx", a.MaxSpeedup)
		if a.BalancedSpeedup > 0 {
			fmt.Fprintf(w, ", %.2fx if perfectly balanced at %d workers", a.BalancedSpeedup, a.Workers)
		}
		if a.MeasuredSpeedup > 0 {
			fmt.Fprintf(w, ", %.2fx measured", a.MeasuredSpeedup)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%s\n", a.Diagnosis)
}
