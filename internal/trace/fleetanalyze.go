package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// The fleet diagnoser: the distributed sibling of Analyze. Where
// Analyze decomposes one process's span timeline into Amdahl terms,
// AnalyzeFleet reads a stitched multi-process trace — coordinator
// tracks plus one process group per worker — and names the dominant
// limiter of the *fleet*: a straggler worker, a reassignment storm
// (lease churn), a coordinator-side merge stall, or a fleet too small
// for its unit stream.

// FleetWorkerStat is one worker process's accounting.
type FleetWorkerStat struct {
	Name string `json:"name"`
	// Units is the number of exec spans (leased units attempted).
	Units int `json:"units"`
	// BusySeconds is total exec-span time; Utilization is busy over the
	// fleet's wall time.
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
}

// FleetAnalysis is the diagnosis of one stitched fleet trace.
type FleetAnalysis struct {
	WallSeconds float64 `json:"wall_seconds"`
	// Units counts coordinator-acknowledged units (CatDispatch spans on
	// the coordinator's dispatch tracks); Expiries counts reaped leases.
	Units    int `json:"units"`
	Expiries int `json:"expiries"`
	// MergeSeconds is coordinator-side merge time (CatMerge spans).
	MergeSeconds float64 `json:"merge_seconds"`

	Workers []FleetWorkerStat `json:"workers,omitempty"`

	DroppedSpans int `json:"dropped_spans,omitempty"`

	// Diagnosis is the one-line verdict naming the dominant fleet
	// limiter.
	Diagnosis string `json:"diagnosis"`
}

// AnalyzeFleet computes the fleet diagnosis of a stitched multi-process
// trace (Fleet.Model or a parsed fleet trace file). It also accepts a
// single-process model — the worker list will be empty and the verdict
// says so rather than dividing by anything.
func AnalyzeFleet(m *Model) *FleetAnalysis {
	a := &FleetAnalysis{}
	var wall float64
	for i := range m.Tracks {
		t := &m.Tracks[i]
		a.DroppedSpans += t.Dropped
		for j := range t.Spans {
			if e := t.Spans[j].End().Seconds(); e > wall {
				wall = e
			}
		}
	}
	a.WallSeconds = wall

	// Which pids are worker process groups? In a stitched trace the
	// coordinator is the process named "coordinator" (or the only
	// process); workers are the "worker <id>" processes.
	workerPID := make(map[int]string)
	for pid, name := range m.Processes {
		if rest, ok := strings.CutPrefix(name, "worker "); ok {
			workerPID[pid] = rest
		}
	}

	stats := make(map[int]*FleetWorkerStat)
	for i := range m.Tracks {
		t := &m.Tracks[i]
		if id, ok := workerPID[t.PID]; ok {
			ws := stats[t.PID]
			if ws == nil {
				ws = &FleetWorkerStat{Name: id}
				stats[t.PID] = ws
			}
			if t.Name != WorkerExecTrack {
				continue
			}
			for j := range t.Spans {
				ws.Units++
				ws.BusySeconds += t.Spans[j].Dur.Seconds()
			}
			continue
		}
		// Coordinator process: dispatch tracks carry unit acks and
		// lease expiries; the campaign track carries merges.
		for j := range t.Spans {
			sp := &t.Spans[j]
			switch {
			case sp.Cat == CatDispatch && sp.Name == SpanUnit:
				a.Units++
			case sp.Cat == CatDispatch && sp.Name == SpanLeaseExpired:
				a.Expiries++
			case sp.Cat == CatMerge:
				a.MergeSeconds += sp.Dur.Seconds()
			}
		}
	}
	for _, ws := range stats {
		if a.WallSeconds > 0 {
			ws.Utilization = ws.BusySeconds / a.WallSeconds
		}
		a.Workers = append(a.Workers, *ws)
	}
	sort.Slice(a.Workers, func(i, j int) bool { return a.Workers[i].Name < a.Workers[j].Name })
	a.Diagnosis = a.diagnose()
	return a
}

// diagnose names the dominant fleet limiter with ordered heuristics:
// hard structural problems (no workers, lease churn) outrank soft ones
// (imbalance, saturation).
func (a *FleetAnalysis) diagnose() string {
	if len(a.Workers) == 0 {
		return "dominant limiter: undersized fleet — no worker process groups in trace (all units ran on the coordinator's local fallback)"
	}
	storm := a.Units / 4
	if storm < 2 {
		storm = 2
	}
	if a.Expiries >= storm {
		return fmt.Sprintf("dominant limiter: reassignment storm — %d lease expiries against %d completed units (shrink units or raise the lease TTL)",
			a.Expiries, a.Units)
	}
	var busySum, busyMax float64
	slowest := ""
	minUtil := 1.0
	for _, ws := range a.Workers {
		busySum += ws.BusySeconds
		if ws.BusySeconds > busyMax {
			busyMax = ws.BusySeconds
			slowest = ws.Name
		}
		if ws.Utilization < minUtil {
			minUtil = ws.Utilization
		}
	}
	mean := busySum / float64(len(a.Workers))
	if len(a.Workers) >= 2 && mean > 0 && busyMax >= 1.5*mean {
		return fmt.Sprintf("dominant limiter: straggler worker %s — %.3fs busy vs %.3fs fleet mean (rebalance units or replace the worker)",
			slowest, busyMax, mean)
	}
	if a.WallSeconds > 0 && a.MergeSeconds > 0.25*a.WallSeconds {
		return fmt.Sprintf("dominant limiter: coordinator merge stall — %.3fs merging out of %.3fs wall (workers outpace the ordered merge)",
			a.MergeSeconds, a.WallSeconds)
	}
	if minUtil >= 0.8 {
		return fmt.Sprintf("dominant limiter: undersized fleet — every worker >= %.0f%% busy for the whole run (add workers)",
			minUtil*100)
	}
	return fmt.Sprintf("fleet balanced: %d workers, %d units, no straggler, churn, or merge stall dominates", len(a.Workers), a.Units)
}

// WriteReport prints the one-screen human fleet diagnosis.
func (a *FleetAnalysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "fleet trace: %.3fs wall, %d units acked, %d lease expiries, %d workers\n",
		a.WallSeconds, a.Units, a.Expiries, len(a.Workers))
	if a.DroppedSpans > 0 {
		fmt.Fprintf(w, "WARNING: %d spans dropped at the per-track cap; totals undercount\n", a.DroppedSpans)
	}
	if len(a.Workers) > 0 {
		fmt.Fprintf(w, "per-worker:\n")
		fmt.Fprintf(w, "  %-16s %8s %10s %6s\n", "worker", "units", "busy", "util")
		for _, ws := range a.Workers {
			fmt.Fprintf(w, "  %-16s %8d %9.3fs %5.0f%%\n",
				ws.Name, ws.Units, ws.BusySeconds, ws.Utilization*100)
		}
	}
	if a.MergeSeconds > 0 {
		fmt.Fprintf(w, "coordinator merge: %.3fs\n", a.MergeSeconds)
	}
	fmt.Fprintf(w, "%s\n", a.Diagnosis)
}
