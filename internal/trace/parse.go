package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"
)

// Offline model: what `perf trace` analyzes. Built either from a trace
// file (Parse) or straight from a live Recorder (Recorder.Model), so the
// in-process and offline diagnosers are one code path.

// End returns the span's end time.
func (s *Span) End() time.Duration { return s.Start + s.Dur }

// Arg returns the named integer argument and whether it was present.
func (s *Span) Arg(key string) (int64, bool) {
	for _, a := range s.Args {
		if a.K == key {
			return a.V, true
		}
	}
	return 0, false
}

// ModelTrack is one named track with its spans in recorded order. PID
// is meaningful only in a multi-process (fleet) model; single-process
// models leave it zero and the exporter renders everything as pid 1.
type ModelTrack struct {
	Name    string
	PID     int
	TID     int
	Dropped int
	Spans   []Span
}

// Model is a whole trace. Processes maps pid → process name; nil for a
// single-process trace (the legacy layout), non-nil for a stitched
// fleet trace with one process group per worker.
type Model struct {
	Tracks    []ModelTrack
	Processes map[int]string
}

// Track returns the named track, or nil.
func (m *Model) Track(name string) *ModelTrack {
	for i := range m.Tracks {
		if m.Tracks[i].Name == name {
			return &m.Tracks[i]
		}
	}
	return nil
}

// fileEvent is the wire form of one trace event. Only the fields this
// package emits are read; foreign traces with extra fields still parse.
type fileEvent struct {
	Ph   string          `json:"ph"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ts   float64         `json:"ts"`  // microseconds
	Dur  float64         `json:"dur"` // microseconds
	Args json.RawMessage `json:"args"`
}

// traceFile is the JSON-object container form.
type traceFile struct {
	TraceEvents []fileEvent `json:"traceEvents"`
}

// ParseFile reads a Chrome trace-event JSON file into a Model.
func ParseFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	m, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return m, nil
}

// Parse decodes trace-event JSON. Both container forms are accepted: the
// JSON object {"traceEvents":[...]} this package writes, and the bare
// JSON-array form some tools emit.
func Parse(data []byte) (*Model, error) {
	var events []fileEvent
	var obj traceFile
	if err := json.Unmarshal(data, &obj); err == nil && obj.TraceEvents != nil {
		events = obj.TraceEvents
	} else if aerr := json.Unmarshal(data, &events); aerr != nil {
		return nil, fmt.Errorf("neither a trace-event object nor array: %w", err)
	}

	// Tracks are keyed by (pid, tid): a stitched fleet trace reuses tid
	// numbers across worker process groups.
	type key struct{ pid, tid int }
	byKey := make(map[key]*ModelTrack)
	var order []key
	procNames := make(map[int]string)
	pids := make(map[int]bool)
	track := func(pid, tid int) *ModelTrack {
		k := key{pid, tid}
		if t, ok := byKey[k]; ok {
			return t
		}
		t := &ModelTrack{Name: fmt.Sprintf("tid %d", tid), PID: pid, TID: tid}
		byKey[k] = t
		order = append(order, k)
		return t
	}
	for _, e := range events {
		pids[e.PID] = true
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if json.Unmarshal(e.Args, &args) == nil && args.Name != "" {
					track(e.PID, e.TID).Name = args.Name
				}
			}
			if e.Name == "process_name" {
				var args struct {
					Name string `json:"name"`
				}
				if json.Unmarshal(e.Args, &args) == nil && args.Name != "" {
					procNames[e.PID] = args.Name
				}
			}
		case "X":
			if math.IsNaN(e.Ts) || math.IsNaN(e.Dur) || math.IsInf(e.Ts, 0) || math.IsInf(e.Dur, 0) {
				continue // hostile input: skip, never propagate NaN into sums
			}
			sp := Span{
				Name:  e.Name,
				Cat:   e.Cat,
				Start: time.Duration(e.Ts * float64(time.Microsecond)),
				Dur:   time.Duration(e.Dur * float64(time.Microsecond)),
			}
			if len(e.Args) > 0 {
				var args map[string]json.Number
				if json.Unmarshal(e.Args, &args) == nil {
					keys := make([]string, 0, len(args))
					for k := range args {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for i, k := range keys {
						if i >= 2 {
							break
						}
						if v, err := args[k].Int64(); err == nil {
							sp.Args[i] = KV{K: k, V: v}
						}
					}
				}
			}
			t := track(e.PID, e.TID)
			t.Spans = append(t.Spans, sp)
		case "i":
			if e.Name == "spans_dropped" {
				var args struct {
					Dropped int `json:"dropped"`
				}
				if json.Unmarshal(e.Args, &args) == nil {
					track(e.PID, e.TID).Dropped += args.Dropped
				}
			}
		}
	}

	m := &Model{}
	sort.Slice(order, func(i, j int) bool {
		if order[i].pid != order[j].pid {
			return order[i].pid < order[j].pid
		}
		return order[i].tid < order[j].tid
	})
	for _, k := range order {
		m.Tracks = append(m.Tracks, *byKey[k])
	}
	if len(pids) > 1 {
		// Multi-process (fleet) trace: surface the process map. A
		// single-pid file stays a legacy model — PIDs zeroed so the
		// analyzer and re-export treat it exactly as before.
		m.Processes = make(map[int]string)
		for pid := range pids {
			name, ok := procNames[pid]
			if !ok {
				name = fmt.Sprintf("pid %d", pid)
			}
			m.Processes[pid] = name
		}
	} else {
		for i := range m.Tracks {
			m.Tracks[i].PID = 0
		}
	}
	return m, nil
}
