// Package lfsr implements the linear feedback shift registers that serve
// as the pseudo-random pattern generators of the reproduced BIST scheme,
// plus the software random sources used by the test generation procedures.
//
// The paper requires that every random draw be repeatable: the initial
// test set TS0 is always generated from the same seed, and each iteration
// I of the limited-scan insertion procedure reseeds its generator with
// seed(I) so the test set TS(I,D1) is a pure function of (I, D1). The
// Source interface and its implementations here give exactly that
// property: equal seeds produce equal streams forever.
//
// Two LFSR stepping styles are provided. The Fibonacci (external XOR)
// form mirrors the textbook BIST PRPG; the Galois (internal XOR) form is
// the faster software implementation. Both traverse the same maximal
// 2^k - 1 cycle when configured with a primitive characteristic
// polynomial, for which a table covering degrees 3..64 is included.
package lfsr
