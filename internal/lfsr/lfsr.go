package lfsr

import "fmt"

// Style selects the feedback structure of an LFSR.
type Style int

const (
	// Galois is the internal-XOR form: on each step the register shifts
	// right and the polynomial mask is XORed in when the output bit is 1.
	// It is the fast software form and the package default.
	Galois Style = iota
	// Fibonacci is the external-XOR (textbook PRPG) form: the feedback
	// bit is the parity of the tapped stages and enters at the top.
	Fibonacci
)

func (s Style) String() string {
	switch s {
	case Galois:
		return "galois"
	case Fibonacci:
		return "fibonacci"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// LFSR is a linear feedback shift register of degree <= 64 with a
// primitive characteristic polynomial, stepping through all 2^k - 1
// nonzero states. The zero state is a fixed point and is never entered
// from a nonzero seed; Seed maps 0 to 1 to keep the register live.
type LFSR struct {
	state  uint64
	poly   uint64 // coefficient mask, x^degree implicit, bit 0 set
	degree int
	style  Style
	mask   uint64 // degree low bits set
}

// New returns an LFSR of the given degree (3..64) and style, seeded with
// the given seed (reduced into the register width; a zero reduction is
// bumped to 1).
func New(degree int, style Style, seed uint64) (*LFSR, error) {
	poly, actual, err := PrimitivePoly(degree)
	if err != nil {
		return nil, err
	}
	var mask uint64
	if actual == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(actual)) - 1
	}
	l := &LFSR{poly: poly, degree: actual, style: style, mask: mask}
	l.Seed(seed)
	return l, nil
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(degree int, style Style, seed uint64) *LFSR {
	l, err := New(degree, style, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// Degree reports the register's actual degree (which may exceed the
// requested one when the requested degree was not tabulated).
func (l *LFSR) Degree() int { return l.degree }

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Seed loads the register with seed reduced modulo the register width.
// A zero reduction becomes 1 (the all-zero state is a dead fixed point).
func (l *LFSR) Seed(seed uint64) {
	l.state = seed & l.mask
	if l.state == 0 {
		l.state = 1
	}
}

// Step advances the register one clock and returns the output bit.
func (l *LFSR) Step() uint8 {
	switch l.style {
	case Galois:
		out := uint8(l.state & 1)
		l.state >>= 1
		if out == 1 {
			// Fold the polynomial back in. The implicit x^degree term
			// corresponds to the top stage of the register.
			l.state ^= (l.poly >> 1) | (1 << uint(l.degree-1))
		}
		return out
	default: // Fibonacci
		out := uint8(l.state & 1)
		// Feedback parity over the tapped stages. Stage i of the
		// register holds the coefficient of x^i in the running
		// polynomial-division view, so the taps are the polynomial
		// coefficients including the constant term.
		fb := parity(l.state & l.poly)
		l.state >>= 1
		l.state |= uint64(fb) << uint(l.degree-1)
		return out
	}
}

func parity(x uint64) uint8 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return uint8(x & 1)
}

// Bits returns the next n output bits, most recent last.
func (l *LFSR) Bits(n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = l.Step()
	}
	return out
}

// Uint64 assembles the next 64 output bits into a word, first bit in the
// least significant position.
func (l *LFSR) Uint64() uint64 {
	var w uint64
	for i := 0; i < 64; i++ {
		w |= uint64(l.Step()) << uint(i)
	}
	return w
}
