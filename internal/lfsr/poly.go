package lfsr

import "fmt"

// primitiveTaps lists, per degree k, the exponents of a primitive
// polynomial of degree k over GF(2), excluding the leading x^k term and
// the constant term (both always present). The entries are standard
// minimum-weight primitive polynomials from the usual LFSR tap tables.
// Degrees without an entry are served by the next larger tabulated degree.
var primitiveTaps = map[int][]int{
	3:  {1},
	4:  {1},
	5:  {2},
	6:  {1},
	7:  {1},
	8:  {4, 3, 2},
	9:  {4},
	10: {3},
	11: {2},
	12: {6, 4, 1},
	13: {4, 3, 1},
	14: {10, 6, 1},
	15: {1},
	16: {12, 3, 1},
	17: {3},
	18: {7},
	19: {5, 2, 1},
	20: {3},
	21: {2},
	22: {1},
	23: {5},
	24: {7, 2, 1},
	25: {3},
	26: {6, 2, 1},
	27: {5, 2, 1},
	28: {3},
	29: {2},
	30: {6, 4, 1},
	31: {3},
	32: {22, 2, 1},
	33: {13},
	35: {2},
	36: {11},
	39: {4},
	41: {3},
	47: {5},
	49: {9},
	52: {3},
	55: {24},
	57: {7},
	58: {19},
	60: {1},
	63: {1},
	64: {4, 3, 1},
}

// PrimitivePoly returns the coefficient mask of a primitive polynomial of
// the requested degree: bit i of the mask is the coefficient of x^i, the
// leading x^k term is implicit, and the constant term (bit 0) is always
// set. When the exact degree is not tabulated, the nearest larger
// tabulated degree is used — the resulting register still has a maximal
// period of at least 2^degree - 1 — and the degree actually used is
// returned. An error is returned only outside the supported range [3,64].
func PrimitivePoly(degree int) (mask uint64, actualDegree int, err error) {
	if degree < 3 || degree > 64 {
		return 0, 0, fmt.Errorf("lfsr: no primitive polynomial for degree %d (supported range 3..64)", degree)
	}
	for k := degree; k <= 64; k++ {
		taps, ok := primitiveTaps[k]
		if !ok {
			continue
		}
		mask = 1 // constant term
		for _, e := range taps {
			mask |= 1 << uint(e)
		}
		return mask, k, nil
	}
	return 0, 0, fmt.Errorf("lfsr: no primitive polynomial at or above degree %d", degree)
}
