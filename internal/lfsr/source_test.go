package lfsr

import (
	"testing"
)

func TestSourcesReproducible(t *testing.T) {
	mk := map[string]func(seed uint64) Source{
		"splitmix": NewSplitMix,
		"lfsr": func(seed uint64) Source {
			s, err := NewSource(32, seed)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, f := range mk {
		a, b := f(123), f(123)
		for i := 0; i < 500; i++ {
			if a.Bit() != b.Bit() {
				t.Fatalf("%s: bit streams diverged at %d", name, i)
			}
		}
		a, b = f(123), f(123)
		for i := 0; i < 100; i++ {
			if a.Intn(17) != b.Intn(17) {
				t.Fatalf("%s: Intn streams diverged at %d", name, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := NewSplitMix(1), NewSplitMix(2)
	same := true
	for i := 0; i < 64; i++ {
		if a.Bit() != b.Bit() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-bit prefixes")
	}
}

func TestIntnRange(t *testing.T) {
	srcs := []Source{NewSplitMix(9)}
	if s, err := NewSource(24, 9); err == nil {
		srcs = append(srcs, s)
	} else {
		t.Fatal(err)
	}
	for _, src := range srcs {
		for _, n := range []int{1, 2, 3, 7, 10, 64, 1000} {
			for i := 0; i < 200; i++ {
				v := src.Intn(n)
				if v < 0 || v >= n {
					t.Fatalf("Intn(%d) = %d out of range", n, v)
				}
			}
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	for _, n := range []int{0, -3} {
		func(n int) {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			NewSplitMix(1).Intn(n)
		}(n)
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	src := NewSplitMix(77)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[src.Intn(n)]++
	}
	for v, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("value %d drawn %d times, expected about %d", v, c, draws/n)
		}
	}
}

func TestDrawZeroProbability(t *testing.T) {
	// DrawZero(src, D) must fire with probability about 1/D — the knob
	// the paper uses to set the limited-scan insertion rate.
	for _, d := range []int{1, 2, 5, 10} {
		src := NewSplitMix(uint64(d) * 31)
		const draws = 50000
		hits := 0
		for i := 0; i < draws; i++ {
			if DrawZero(src, d) {
				hits++
			}
		}
		want := draws / d
		if hits < want*8/10 || hits > want*12/10 {
			t.Errorf("D=%d: %d hits in %d draws, expected about %d", d, hits, draws, want)
		}
	}
}

func TestDrawModPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DrawMod(0) did not panic")
		}
	}()
	DrawMod(NewSplitMix(1), 0)
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s == 0 {
			t.Fatalf("DeriveSeed produced zero at iteration %d", i)
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("DeriveSeed collision between iterations %d and %d", prev, i)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Error("different base seeds produced equal derived seeds")
	}
}

func TestSourceBitBalance(t *testing.T) {
	src := NewSplitMix(5)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ones += int(src.Bit())
	}
	if ones < n*48/100 || ones > n*52/100 {
		t.Errorf("splitmix bit balance %d/%d", ones, n)
	}
}
