package lfsr

// Source is a reproducible stream of random values. Equal implementations
// seeded identically produce identical streams forever, which is the
// property the paper relies on to re-apply TS0 and to regenerate TS(I,D1)
// from the stored pair (I, D1) alone.
type Source interface {
	// Bit returns the next pseudo-random bit.
	Bit() uint8
	// Uint64 returns the next 64 pseudo-random bits as a word.
	Uint64() uint64
	// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
	Intn(n int) int
}

// lfsrSource adapts an LFSR to the Source interface.
type lfsrSource struct {
	reg *LFSR
}

// NewSource returns an LFSR-backed Source of the given degree. It is the
// hardware-faithful source: the bit stream is exactly the serial output
// of a maximal-length LFSR.
func NewSource(degree int, seed uint64) (Source, error) {
	reg, err := New(degree, Galois, seed)
	if err != nil {
		return nil, err
	}
	return &lfsrSource{reg: reg}, nil
}

func (s *lfsrSource) Bit() uint8     { return s.reg.Step() }
func (s *lfsrSource) Uint64() uint64 { return s.reg.Uint64() }

func (s *lfsrSource) Intn(n int) int {
	if n <= 0 {
		panic("lfsr: Intn with non-positive bound")
	}
	// Draw ceil(log2(n)) bits and reject out-of-range values so the
	// distribution over [0,n) is uniform.
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	for {
		v := 0
		for i := 0; i < bits; i++ {
			v = v<<1 | int(s.reg.Step())
		}
		if v < n {
			return v
		}
	}
}

// splitMix is a SplitMix64 generator: tiny state, excellent distribution,
// and cheap. It is the software source used where hardware fidelity is
// not required (synthetic circuit generation, workload construction).
type splitMix struct {
	state uint64
	buf   uint64
	nbits int
}

// NewSplitMix returns a SplitMix64-backed Source.
func NewSplitMix(seed uint64) Source { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix) Bit() uint8 {
	if s.nbits == 0 {
		s.buf = s.next()
		s.nbits = 64
	}
	b := uint8(s.buf & 1)
	s.buf >>= 1
	s.nbits--
	return b
}

func (s *splitMix) Uint64() uint64 { return s.next() }

func (s *splitMix) Intn(n int) int {
	if n <= 0 {
		panic("lfsr: Intn with non-positive bound")
	}
	// Rejection sampling over the largest multiple of n below 2^64.
	limit := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := s.next()
		if v < limit {
			return int(v % uint64(n))
		}
	}
}

// DeriveSeed maps an iteration number I (and a campaign base seed) to the
// generator seed the paper writes as seed(I). Any injective, well-mixed
// map works; SplitMix64's finalizer keeps nearby iterations decorrelated.
func DeriveSeed(base uint64, iteration int) uint64 {
	z := base + 0x9E3779B97F4A7C15*uint64(iteration+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Draw implements the paper's randomized decision scheme: a draw r in
// [0, R], R >> D, reduced modulo D. DrawZero reports the event
// "r mod D == 0", which occurs with probability 1/D; DrawMod returns
// r mod D itself, uniform over [0, D). Both consume one value from src.
func DrawZero(src Source, d int) bool { return DrawMod(src, d) == 0 }

// DrawMod returns a uniform value in [0, d) using one draw from src.
func DrawMod(src Source, d int) int {
	if d <= 0 {
		panic("lfsr: DrawMod with non-positive modulus")
	}
	return src.Intn(d)
}
