package lfsr

import (
	"testing"
)

func TestPrimitivePolyRange(t *testing.T) {
	for _, d := range []int{2, 65, -1, 0} {
		if _, _, err := PrimitivePoly(d); err == nil {
			t.Errorf("PrimitivePoly(%d) succeeded, want error", d)
		}
	}
	for d := 3; d <= 64; d++ {
		mask, actual, err := PrimitivePoly(d)
		if err != nil {
			t.Fatalf("PrimitivePoly(%d): %v", d, err)
		}
		if actual < d {
			t.Errorf("PrimitivePoly(%d) returned smaller degree %d", d, actual)
		}
		if mask&1 == 0 {
			t.Errorf("PrimitivePoly(%d) missing constant term", d)
		}
		if actual < 64 && mask>>uint(actual) != 0 {
			t.Errorf("PrimitivePoly(%d) mask has bits at/above degree %d", d, actual)
		}
	}
}

// TestMaximalPeriod verifies that every tabulated polynomial up to degree
// 20 really is primitive by walking the full cycle: a maximal-length LFSR
// of degree k returns to its seed after exactly 2^k - 1 steps and never
// earlier.
func TestMaximalPeriod(t *testing.T) {
	for d := 3; d <= 20; d++ {
		if _, ok := primitiveTaps[d]; !ok {
			continue
		}
		for _, style := range []Style{Galois, Fibonacci} {
			l := MustNew(d, style, 1)
			seed := l.State()
			period := 0
			for {
				l.Step()
				period++
				if l.State() == seed {
					break
				}
				if period > 1<<uint(d) {
					t.Fatalf("degree %d %s: period exceeds 2^%d", d, style, d)
				}
			}
			want := 1<<uint(d) - 1
			if period != want {
				t.Errorf("degree %d %s: period %d, want %d (polynomial not primitive)", d, style, period, want)
			}
		}
	}
}

func TestZeroSeedBumped(t *testing.T) {
	l := MustNew(8, Galois, 0)
	if l.State() == 0 {
		t.Fatal("zero seed left register in dead state")
	}
	l.Step()
	if l.State() == 0 {
		t.Fatal("register fell into the zero state")
	}
}

func TestNeverZeroState(t *testing.T) {
	for _, style := range []Style{Galois, Fibonacci} {
		l := MustNew(10, style, 0xDEADBEEF)
		for i := 0; i < 5000; i++ {
			l.Step()
			if l.State() == 0 {
				t.Fatalf("%s LFSR hit the zero state at step %d", style, i)
			}
		}
	}
}

func TestReproducibility(t *testing.T) {
	a := MustNew(16, Galois, 42)
	b := MustNew(16, Galois, 42)
	for i := 0; i < 1000; i++ {
		if a.Step() != b.Step() {
			t.Fatalf("identically seeded LFSRs diverged at step %d", i)
		}
	}
}

func TestReseedRepeats(t *testing.T) {
	l := MustNew(16, Galois, 7)
	first := l.Bits(64)
	l.Seed(7)
	second := l.Bits(64)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reseeded stream diverged at bit %d", i)
		}
	}
}

func TestBitsBalance(t *testing.T) {
	// A maximal-length LFSR output is balanced to within one bit per
	// period; over many steps the ones fraction must be near 1/2.
	l := MustNew(20, Galois, 99)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ones += int(l.Step())
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Errorf("ones fraction %d/%d far from 1/2", ones, n)
	}
}

func TestUint64(t *testing.T) {
	l := MustNew(32, Galois, 5)
	m := MustNew(32, Galois, 5)
	w := l.Uint64()
	for i := 0; i < 64; i++ {
		if uint8(w>>uint(i))&1 != m.Step() {
			t.Fatalf("Uint64 bit %d disagrees with Step stream", i)
		}
	}
}

func TestStyleString(t *testing.T) {
	if Galois.String() != "galois" || Fibonacci.String() != "fibonacci" {
		t.Error("style names wrong")
	}
	if Style(9).String() == "" {
		t.Error("unknown style produced empty string")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(2, Galois, 1); err == nil {
		t.Error("New(2) succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(2) did not panic")
		}
	}()
	MustNew(2, Galois, 1)
}
