// Package misr implements a multiple-input signature register, the
// response compactor of a classical LFSR-based BIST architecture like
// the one the paper assumes. Instead of comparing every observed value
// against the good machine, a hardware BIST compacts the observation
// stream into a k-bit signature; a fault is detected when its signature
// differs from the fault-free one. Compaction can alias (a faulty stream
// may produce the fault-free signature, probability about 2^-k), which
// this package makes measurable: the register is maintained bit-parallel
// across 64 machine lanes, so one pass yields 64 signatures.
package misr

import (
	"fmt"

	"limscan/internal/lfsr"
	"limscan/internal/logic"
)

// MISR is a bit-parallel multiple-input signature register of degree k:
// lane j of the register words carries machine j's signature state. The
// feedback polynomial is primitive, taken from the lfsr package tables.
type MISR struct {
	state  []logic.Word // one word per register bit; index 0 is the input end
	taps   []int        // register bits XORed into the feedback
	degree int
	fed    int // inputs absorbed so far
}

// New returns a MISR of the given degree (3..64).
func New(degree int) (*MISR, error) {
	poly, actual, err := lfsr.PrimitivePoly(degree)
	if err != nil {
		return nil, err
	}
	m := &MISR{state: make([]logic.Word, actual), degree: actual}
	// Bit i of poly is the coefficient of x^i; the constant term is the
	// feedback into stage 0 (always present).
	for i := 0; i < actual; i++ {
		if poly&(1<<uint(i)) != 0 {
			m.taps = append(m.taps, i)
		}
	}
	return m, nil
}

// MustNew is New for known-good degrees.
func MustNew(degree int) *MISR {
	m, err := New(degree)
	if err != nil {
		panic(err)
	}
	return m
}

// Degree reports the register width.
func (m *MISR) Degree() int { return m.degree }

// Reset clears the register.
func (m *MISR) Reset() {
	for i := range m.state {
		m.state[i] = 0
	}
	m.fed = 0
}

// Feed absorbs one observation word: the register shifts one position
// with primitive-polynomial feedback, and w is XORed into stage 0. All
// 64 lanes advance independently (the same linear map applies lanewise).
func (m *MISR) Feed(w logic.Word) {
	// Feedback is the top stage (coefficient of x^degree, implicit).
	fb := m.state[m.degree-1]
	// Shift towards higher indices.
	copy(m.state[1:], m.state[:m.degree-1])
	m.state[0] = 0
	// Fold the feedback into the tapped stages (including stage 0).
	for _, t := range m.taps {
		m.state[t] ^= fb
	}
	m.state[0] ^= w
	m.fed++
}

// Fed reports how many words have been absorbed since the last Reset.
func (m *MISR) Fed() int { return m.fed }

// Signature returns lane j's k-bit signature.
func (m *MISR) Signature(lane int) uint64 {
	var sig uint64
	for i, w := range m.state {
		sig |= uint64(logic.Bit(w, lane)) << uint(i)
	}
	return sig
}

// DiffMask returns a word with lane j set when lane j's signature
// differs from lane 0's (the good machine): the BIST pass/fail verdict
// for every simulated fault at once.
func (m *MISR) DiffMask() logic.Word {
	var diff logic.Word
	for _, w := range m.state {
		good := logic.Spread(logic.Bit(w, 0))
		diff |= w ^ good
	}
	return diff &^ logic.Lane(0)
}

// String renders the good-machine signature for logs.
func (m *MISR) String() string {
	return fmt.Sprintf("misr{deg=%d sig=%#x fed=%d}", m.degree, m.Signature(0), m.fed)
}
