package misr

import (
	"testing"

	"limscan/internal/logic"
)

func TestZeroStreamZeroSignature(t *testing.T) {
	m := MustNew(16)
	for i := 0; i < 100; i++ {
		m.Feed(0)
	}
	if m.Signature(0) != 0 {
		t.Errorf("zero stream produced signature %#x", m.Signature(0))
	}
	if m.DiffMask() != 0 {
		t.Error("identical lanes reported different")
	}
}

func TestSingleBitChangesSignature(t *testing.T) {
	// A single differing observation must change the signature (MISRs
	// never alias on a single-bit error within the first k inputs, and
	// generally a single injected error survives the linear map).
	m := MustNew(16)
	for i := 0; i < 50; i++ {
		w := logic.Word(0)
		if i == 20 {
			w = logic.Lane(5) // lane 5 sees a different bit at step 20
		}
		m.Feed(w)
	}
	if m.Signature(5) == m.Signature(0) {
		t.Error("single-bit error aliased")
	}
	if m.DiffMask() != logic.Lane(5) {
		t.Errorf("DiffMask = %x, want lane 5 only", m.DiffMask())
	}
}

func TestLanesIndependent(t *testing.T) {
	// Feeding per-lane streams must equal feeding each lane separately.
	streams := [][]uint8{
		{1, 0, 1, 1, 0, 0, 1, 0},
		{0, 0, 0, 1, 1, 1, 0, 1},
		{1, 1, 1, 1, 1, 1, 1, 1},
	}
	par := MustNew(8)
	for step := 0; step < len(streams[0]); step++ {
		var w logic.Word
		for lane, s := range streams {
			if s[step] == 1 {
				w |= logic.Lane(lane)
			}
		}
		par.Feed(w)
	}
	for lane, s := range streams {
		ser := MustNew(8)
		for _, b := range s {
			ser.Feed(logic.Spread(b) & 1) // lane 0 carries the serial stream
		}
		if par.Signature(lane) != ser.Signature(0) {
			t.Errorf("lane %d: parallel %#x vs serial %#x", lane, par.Signature(lane), ser.Signature(0))
		}
	}
}

func TestLinearity(t *testing.T) {
	// MISR compaction is linear over GF(2): sig(a xor b) == sig(a) xor
	// sig(b) when fed the same number of inputs.
	a := []logic.Word{0x5, 0x3, 0x9, 0xF, 0x1}
	b := []logic.Word{0x2, 0x8, 0x4, 0x6, 0xA}
	ma, mb, mab := MustNew(12), MustNew(12), MustNew(12)
	for i := range a {
		ma.Feed(a[i])
		mb.Feed(b[i])
		mab.Feed(a[i] ^ b[i])
	}
	for lane := 0; lane < 4; lane++ {
		if mab.Signature(lane) != ma.Signature(lane)^mb.Signature(lane) {
			t.Errorf("lane %d: linearity violated", lane)
		}
	}
}

func TestReset(t *testing.T) {
	m := MustNew(8)
	m.Feed(logic.AllOnes)
	m.Reset()
	if m.Signature(0) != 0 || m.Fed() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestBadDegree(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("degree 2 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(2) did not panic")
		}
	}()
	MustNew(2)
}

func TestAliasingRateIsSmall(t *testing.T) {
	// Random error streams alias with probability about 2^-k. For k=16
	// and 2000 random error lanes, expect about 0.03 aliases; assert
	// only a small count so the test is robust.
	const trials = 2000
	aliases := 0
	rng := uint64(7)
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for trial := 0; trial < trials; trial++ {
		m := MustNew(16)
		for step := 0; step < 40; step++ {
			// Lane 1 carries a random error pattern relative to lane 0.
			w := logic.Word(0)
			if next()&1 == 1 {
				w |= logic.Lane(1)
			}
			m.Feed(w)
		}
		if m.Signature(1) == m.Signature(0) {
			// All-equal streams are not errors; only count real ones.
			// (The probability that all 40 draws were zero is ~1e-12.)
			aliases++
		}
	}
	if aliases > 5 {
		t.Errorf("aliasing rate too high: %d/%d", aliases, trials)
	}
}
