package misr

import (
	"testing"
	"testing/quick"

	"limscan/internal/logic"
)

// TestLinearityProperty: signature(a xor b) == signature(a) xor
// signature(b) for arbitrary equal-length streams — the defining property
// of linear compaction, checked with testing/quick.
func TestLinearityProperty(t *testing.T) {
	f := func(a, b []uint64, degRaw uint8) bool {
		deg := int(degRaw%30) + 3
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		ma, mb, mab := MustNew(deg), MustNew(deg), MustNew(deg)
		for i := 0; i < n; i++ {
			ma.Feed(a[i])
			mb.Feed(b[i])
			mab.Feed(a[i] ^ b[i])
		}
		for lane := 0; lane < 64; lane += 7 {
			if mab.Signature(lane) != ma.Signature(lane)^mb.Signature(lane) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDiffMaskProperty: DiffMask flags exactly the lanes whose signature
// differs from lane 0's.
func TestDiffMaskProperty(t *testing.T) {
	f := func(stream []uint64) bool {
		m := MustNew(16)
		for _, w := range stream {
			m.Feed(logic.Word(w))
		}
		diff := m.DiffMask()
		for lane := 1; lane < 64; lane++ {
			flagged := diff&logic.Lane(lane) != 0
			differs := m.Signature(lane) != m.Signature(0)
			if flagged != differs {
				return false
			}
		}
		return diff&logic.Lane(0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
