// Package sim provides bit-parallel logic simulation of the gate-level
// netlists in package circuit. An Evaluator evaluates the combinational
// core with 64 independent machines per word; the lanes can carry 64 test
// patterns (good-machine simulation) or one good machine plus 63 faulty
// machines (fault simulation — the injection hooks used by package fsim
// live here).
package sim

import (
	"fmt"

	"limscan/internal/circuit"
	"limscan/internal/logic"
)

// PinForce overrides the value a particular gate input pin observes, in
// the lanes selected by Mask. It models an input (branch) stuck-at fault.
type PinForce struct {
	Pin  int
	Mask logic.Word
	Val  logic.Word
}

// TransForce models gross-delay transition faults on one gate's output:
// in the lanes of RiseMask a rising edge arrives one functional cycle
// late (the line shows its previous value for the transition cycle); the
// lanes of FallMask delay falling edges. Prev holds every lane's natural
// (pre-injection) value from the previous functional evaluation; Primed
// is false until a functional cycle has run since the last scan
// operation, because launch-on-capture pairs must be consecutive
// at-speed cycles.
type TransForce struct {
	RiseMask logic.Word
	FallMask logic.Word
	Prev     logic.Word
	Primed   bool
}

// Forces describes the fault injections active during an evaluation.
// OutMask/OutVal force gate output values per lane (stem faults, including
// faults on PI and flip-flop outputs); Pins force individual input pins
// (branch faults); Trans holds transition faults. A nil *Forces means
// fault-free evaluation.
type Forces struct {
	OutMask []logic.Word // per gate ID
	OutVal  []logic.Word // per gate ID
	Pins    map[int][]PinForce
	Trans   map[int]*TransForce
}

// NewForces returns an empty Forces sized for circuit c.
func NewForces(c *circuit.Circuit) *Forces {
	return &Forces{
		OutMask: make([]logic.Word, c.NumGates()),
		OutVal:  make([]logic.Word, c.NumGates()),
		Pins:    make(map[int][]PinForce),
		Trans:   make(map[int]*TransForce),
	}
}

// Reset clears all injections for reuse.
func (f *Forces) Reset() {
	for i := range f.OutMask {
		f.OutMask[i] = 0
		f.OutVal[i] = 0
	}
	for k := range f.Pins {
		delete(f.Pins, k)
	}
	for k := range f.Trans {
		delete(f.Trans, k)
	}
}

// ForceTransition adds a transition fault on gate's output in the given
// lane (rise selects slow-to-rise, otherwise slow-to-fall).
func (f *Forces) ForceTransition(gate, lane int, rise bool) {
	tf := f.Trans[gate]
	if tf == nil {
		tf = &TransForce{}
		f.Trans[gate] = tf
	}
	if rise {
		tf.RiseMask |= logic.Lane(lane)
	} else {
		tf.FallMask |= logic.Lane(lane)
	}
}

// UnprimeTransitions marks a scan operation: the next functional cycle
// cannot be a launch-on-capture pair with the previous one.
func (f *Forces) UnprimeTransitions() {
	for _, tf := range f.Trans {
		tf.Primed = false
	}
}

// applyTrans injects a gate's transition faults given its natural value
// this cycle, and records the value for the next cycle.
func (tf *TransForce) apply(natural logic.Word) logic.Word {
	w := natural
	if tf.Primed {
		if tf.RiseMask != 0 {
			// A delayed rise shows the previous value: 1 only if the
			// line was already 1.
			w = logic.Force(w, tf.RiseMask, natural&tf.Prev)
		}
		if tf.FallMask != 0 {
			w = logic.Force(w, tf.FallMask, natural|tf.Prev)
		}
	}
	tf.Prev = natural
	tf.Primed = true
	return w
}

// ForceOut adds a stem force: in the given lane, gate's output is stuck
// at val.
func (f *Forces) ForceOut(gate int, lane int, val uint8) {
	m := logic.Lane(lane)
	f.OutMask[gate] |= m
	if val != 0 {
		f.OutVal[gate] |= m
	} else {
		f.OutVal[gate] &^= m
	}
}

// ForcePin adds a branch force: in the given lane, the value gate sees on
// input pin is stuck at val.
func (f *Forces) ForcePin(gate, pin int, lane int, val uint8) {
	m := logic.Lane(lane)
	v := logic.Word(0)
	if val != 0 {
		v = m
	}
	f.Pins[gate] = append(f.Pins[gate], PinForce{Pin: pin, Mask: m, Val: v})
}

// Evaluator holds per-gate word values for one circuit and evaluates the
// combinational core in levelized order.
type Evaluator struct {
	c   *circuit.Circuit
	val []logic.Word
}

// NewEvaluator returns an Evaluator for c with all values zero.
func NewEvaluator(c *circuit.Circuit) *Evaluator {
	return &Evaluator{c: c, val: make([]logic.Word, c.NumGates())}
}

// Circuit returns the evaluated netlist.
func (e *Evaluator) Circuit() *circuit.Circuit { return e.c }

// Value returns the current word value of a gate.
func (e *Evaluator) Value(gate int) logic.Word { return e.val[gate] }

// SetPI assigns the word value of primary input index i (in the order of
// Circuit.Inputs).
func (e *Evaluator) SetPI(i int, w logic.Word) { e.val[e.c.Inputs[i]] = w }

// SetState assigns the word value of the flip-flop at scan position i.
func (e *Evaluator) SetState(i int, w logic.Word) { e.val[e.c.DFFs[i]] = w }

// State returns the word value of the flip-flop at scan position i.
func (e *Evaluator) State(i int) logic.Word { return e.val[e.c.DFFs[i]] }

// PO returns the word value of primary output index i.
func (e *Evaluator) PO(i int) logic.Word { return e.val[e.c.Outputs[i]] }

// NextState returns the word value feeding the flip-flop at scan position
// i (valid after Eval).
func (e *Evaluator) NextState(i int) logic.Word {
	d := e.c.DFFs[i]
	return e.val[e.c.Gates[d].Fanin[0]]
}

// Eval evaluates the combinational core under the given injections (nil
// for fault-free). PI and flip-flop values must have been set; they are
// themselves subject to stem forces (a stuck output of a PI or flip-flop).
func (e *Evaluator) Eval(f *Forces) {
	g := e.c.Gates
	if f != nil {
		// Stem and transition faults on sources apply before any gate
		// reads them.
		for _, id := range e.c.Inputs {
			if tf, ok := f.Trans[id]; ok {
				e.val[id] = tf.apply(e.val[id])
			}
			if m := f.OutMask[id]; m != 0 {
				e.val[id] = logic.Force(e.val[id], m, f.OutVal[id])
			}
		}
		for _, id := range e.c.DFFs {
			if m := f.OutMask[id]; m != 0 {
				e.val[id] = logic.Force(e.val[id], m, f.OutVal[id])
			}
		}
	}
	for _, id := range e.c.EvalOrder() {
		gate := &g[id]
		var w logic.Word
		if f != nil {
			if pf, ok := f.Pins[id]; ok {
				w = e.evalForced(gate, pf)
			} else {
				w = e.evalPlain(gate)
			}
			if tf, ok := f.Trans[id]; ok {
				w = tf.apply(w)
			}
			if m := f.OutMask[id]; m != 0 {
				w = logic.Force(w, m, f.OutVal[id])
			}
		} else {
			w = e.evalPlain(gate)
		}
		e.val[id] = w
	}
}

func (e *Evaluator) in(gate *circuit.Gate, pin int, pf []PinForce) logic.Word {
	w := e.val[gate.Fanin[pin]]
	for _, p := range pf {
		if p.Pin == pin {
			w = logic.Force(w, p.Mask, p.Val)
		}
	}
	return w
}

func (e *Evaluator) evalPlain(gate *circuit.Gate) logic.Word {
	switch gate.Type {
	case circuit.And, circuit.Nand:
		w := logic.AllOnes
		for _, fi := range gate.Fanin {
			w &= e.val[fi]
		}
		if gate.Type == circuit.Nand {
			w = ^w
		}
		return w
	case circuit.Or, circuit.Nor:
		var w logic.Word
		for _, fi := range gate.Fanin {
			w |= e.val[fi]
		}
		if gate.Type == circuit.Nor {
			w = ^w
		}
		return w
	case circuit.Xor, circuit.Xnor:
		var w logic.Word
		for _, fi := range gate.Fanin {
			w ^= e.val[fi]
		}
		if gate.Type == circuit.Xnor {
			w = ^w
		}
		return w
	case circuit.Not:
		return ^e.val[gate.Fanin[0]]
	case circuit.Buf:
		return e.val[gate.Fanin[0]]
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return logic.AllOnes
	}
	panic(fmt.Sprintf("sim: gate %q of type %s in evaluation order", gate.Name, gate.Type))
}

func (e *Evaluator) evalForced(gate *circuit.Gate, pf []PinForce) logic.Word {
	switch gate.Type {
	case circuit.And, circuit.Nand:
		w := logic.AllOnes
		for pin := range gate.Fanin {
			w &= e.in(gate, pin, pf)
		}
		if gate.Type == circuit.Nand {
			w = ^w
		}
		return w
	case circuit.Or, circuit.Nor:
		var w logic.Word
		for pin := range gate.Fanin {
			w |= e.in(gate, pin, pf)
		}
		if gate.Type == circuit.Nor {
			w = ^w
		}
		return w
	case circuit.Xor, circuit.Xnor:
		var w logic.Word
		for pin := range gate.Fanin {
			w ^= e.in(gate, pin, pf)
		}
		if gate.Type == circuit.Xnor {
			w = ^w
		}
		return w
	case circuit.Not:
		return ^e.in(gate, 0, pf)
	case circuit.Buf:
		return e.in(gate, 0, pf)
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return logic.AllOnes
	}
	panic(fmt.Sprintf("sim: gate %q of type %s in evaluation order", gate.Name, gate.Type))
}
