package sim

import (
	"testing"

	"limscan/internal/bench"
	"limscan/internal/circuit"
	"limscan/internal/logic"
)

const s27Text = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func s27(t testing.TB) *circuit.Circuit {
	c, err := bench.ParseString("s27", s27Text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// combCircuit builds a small combinational circuit exercising every gate
// type. Inputs A, B; outputs one per gate type.
func combCircuit(t testing.TB) *circuit.Circuit {
	b := circuit.NewBuilder("ops")
	b.AddInput("A")
	b.AddInput("B")
	b.AddGate("and", circuit.And, "A", "B")
	b.AddGate("nand", circuit.Nand, "A", "B")
	b.AddGate("or", circuit.Or, "A", "B")
	b.AddGate("nor", circuit.Nor, "A", "B")
	b.AddGate("xor", circuit.Xor, "A", "B")
	b.AddGate("xnor", circuit.Xnor, "A", "B")
	b.AddGate("not", circuit.Not, "A")
	b.AddGate("buf", circuit.Buf, "B")
	b.AddGate("c0", circuit.Const0)
	b.AddGate("c1", circuit.Const1)
	for _, o := range []string{"and", "nand", "or", "nor", "xor", "xnor", "not", "buf", "c0", "c1"} {
		b.MarkOutput(o)
	}
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGateOps(t *testing.T) {
	c := combCircuit(t)
	ev := NewEvaluator(c)
	// Lane i of A/B enumerates all four input combinations in lanes 0..3.
	var a, bv logic.Word
	for lane := 0; lane < 4; lane++ {
		if lane&1 != 0 {
			a |= logic.Lane(lane)
		}
		if lane&2 != 0 {
			bv |= logic.Lane(lane)
		}
	}
	ev.SetPI(0, a)
	ev.SetPI(1, bv)
	ev.Eval(nil)
	want := map[string][4]uint8{
		"and":  {0, 0, 0, 1},
		"nand": {1, 1, 1, 0},
		"or":   {0, 1, 1, 1},
		"nor":  {1, 0, 0, 0},
		"xor":  {0, 1, 1, 0},
		"xnor": {1, 0, 0, 1},
		"not":  {1, 0, 1, 0},
		"buf":  {0, 0, 1, 1},
		"c0":   {0, 0, 0, 0},
		"c1":   {1, 1, 1, 1},
	}
	for name, w := range want {
		id, _ := c.GateByName(name)
		for lane := 0; lane < 4; lane++ {
			if got := logic.Bit(ev.Value(id), lane); got != w[lane] {
				t.Errorf("%s lane %d = %d, want %d", name, lane, got, w[lane])
			}
		}
	}
}

// TestLaneIndependence verifies that a 64-lane evaluation equals 64
// scalar evaluations: the core bit-parallel invariant.
func TestLaneIndependence(t *testing.T) {
	c := s27(t)
	ev := NewEvaluator(c)
	src := func(i int) uint64 { return 0x9E3779B97F4A7C15 * uint64(i+1) }

	// Parallel run: lane k carries pattern k.
	for i := 0; i < c.NumPI(); i++ {
		ev.SetPI(i, logic.Word(src(i)))
	}
	for i := 0; i < c.NumSV(); i++ {
		ev.SetState(i, logic.Word(src(100+i)))
	}
	ev.Eval(nil)
	parallel := make([]logic.Word, c.NumGates())
	copy(parallel, ev.val)

	// Scalar runs.
	for lane := 0; lane < 64; lane++ {
		ev2 := NewEvaluator(c)
		for i := 0; i < c.NumPI(); i++ {
			ev2.SetPI(i, logic.Spread(logic.Bit(logic.Word(src(i)), lane)))
		}
		for i := 0; i < c.NumSV(); i++ {
			ev2.SetState(i, logic.Spread(logic.Bit(logic.Word(src(100+i)), lane)))
		}
		ev2.Eval(nil)
		for id := range parallel {
			if logic.Bit(parallel[id], lane) != logic.Bit(ev2.val[id], 0) {
				t.Fatalf("lane %d gate %s: parallel %d vs scalar %d",
					lane, c.Gates[id].Name, logic.Bit(parallel[id], lane), logic.Bit(ev2.val[id], 0))
			}
		}
	}
}

func TestForceOut(t *testing.T) {
	c := s27(t)
	ev := NewEvaluator(c)
	f := NewForces(c)
	id, _ := c.GateByName("G11")
	f.ForceOut(id, 5, 1) // G11 stuck-at-1 in lane 5

	for i := 0; i < c.NumPI(); i++ {
		ev.SetPI(i, 0)
	}
	for i := 0; i < c.NumSV(); i++ {
		ev.SetState(i, 0)
	}
	ev.Eval(f)
	if logic.Bit(ev.Value(id), 5) != 1 {
		t.Error("forced lane not stuck at 1")
	}
	// G17 = NOT(G11) must see the fault in lane 5 only.
	g17, _ := c.GateByName("G17")
	if logic.Bit(ev.Value(g17), 5) != 0 {
		t.Error("fault effect did not propagate to G17 in lane 5")
	}
	// Other lanes: with all-zero inputs and state, G9=NAND(...)=1, so
	// G11=NOR(0,1)=0 and G17=1.
	if logic.Bit(ev.Value(g17), 0) != 1 {
		t.Error("fault leaked into lane 0")
	}
}

func TestForcePin(t *testing.T) {
	// Branch fault: G8 = AND(G14, G6) with pin 1 (G6 branch) stuck at 1
	// must differ from a stem fault on G6 (which also feeds nothing else
	// here, but the mechanism is what we verify: only G8's view changes).
	c := s27(t)
	ev := NewEvaluator(c)
	f := NewForces(c)
	g8, _ := c.GateByName("G8")
	f.ForcePin(g8, 1, 3, 1)

	// G14=1 requires G0=0. Set G6=0 everywhere.
	for i := 0; i < c.NumPI(); i++ {
		ev.SetPI(i, 0)
	}
	for i := 0; i < c.NumSV(); i++ {
		ev.SetState(i, 0)
	}
	ev.Eval(f)
	if logic.Bit(ev.Value(g8), 3) != 1 {
		t.Error("pin force not applied in lane 3")
	}
	if logic.Bit(ev.Value(g8), 0) != 0 {
		t.Error("pin force leaked into lane 0")
	}
	// The G6 flip-flop value itself must be unchanged.
	g6, _ := c.GateByName("G6")
	if ev.Value(g6) != 0 {
		t.Error("pin force modified the stem value")
	}
}

func TestForceOnSource(t *testing.T) {
	// A stem fault on a PI must override the applied value.
	c := s27(t)
	ev := NewEvaluator(c)
	f := NewForces(c)
	g0 := c.Inputs[0]
	f.ForceOut(g0, 7, 1)
	ev.SetPI(0, 0)
	for i := 1; i < c.NumPI(); i++ {
		ev.SetPI(i, 0)
	}
	for i := 0; i < c.NumSV(); i++ {
		ev.SetState(i, 0)
	}
	ev.Eval(f)
	if logic.Bit(ev.Value(g0), 7) != 1 {
		t.Error("stem fault on PI not applied")
	}
}

func TestForcesReset(t *testing.T) {
	c := s27(t)
	f := NewForces(c)
	id, _ := c.GateByName("G11")
	f.ForceOut(id, 1, 1)
	f.ForcePin(id, 0, 2, 0)
	f.Reset()
	if f.OutMask[id] != 0 || len(f.Pins) != 0 {
		t.Error("Reset left residual forces")
	}
}

func TestRunSequential(t *testing.T) {
	c := s27(t)
	si := logic.MustVec("001")
	vecs := []logic.Vec{
		logic.MustVec("0111"), logic.MustVec("1001"), logic.MustVec("0111"),
		logic.MustVec("1001"), logic.MustVec("0100"),
	}
	steps, final, err := Run(c, si, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 {
		t.Fatalf("steps = %d, want 5", len(steps))
	}
	if !steps[0].State.Equal(si) {
		t.Errorf("S(0) = %s, want %s (S(0) = SI)", steps[0].State, si)
	}
	// Z(0) for the real public s27 netlist under this test is 1, as in
	// the paper's Table 1(a).
	if steps[0].Out.Get(0) != 1 {
		t.Errorf("Z(0) = %d, want 1", steps[0].Out.Get(0))
	}
	if final.Len() != 3 {
		t.Errorf("final state length = %d", final.Len())
	}
	// Determinism.
	steps2, final2, err := Run(c, si, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(final2) {
		t.Error("Run is not deterministic")
	}
	for i := range steps {
		if !steps[i].State.Equal(steps2[i].State) || !steps[i].Out.Equal(steps2[i].Out) {
			t.Fatalf("step %d differs between runs", i)
		}
	}
}

func TestRunDimensionErrors(t *testing.T) {
	c := s27(t)
	if _, _, err := Run(c, logic.MustVec("01"), nil); err == nil {
		t.Error("wrong SI width accepted")
	}
	if _, _, err := Run(c, logic.MustVec("000"), []logic.Vec{logic.MustVec("01")}); err == nil {
		t.Error("wrong vector width accepted")
	}
}

func TestStateAccessors(t *testing.T) {
	c := s27(t)
	ev := NewEvaluator(c)
	ev.SetState(1, 0xFF)
	if ev.State(1) != 0xFF {
		t.Error("State accessor mismatch")
	}
	for i := 0; i < c.NumPI(); i++ {
		ev.SetPI(i, 0)
	}
	for i := 0; i < c.NumSV(); i++ {
		ev.SetState(i, 0)
	}
	ev.Eval(nil)
	// NextState(i) must equal the value of the DFF's driver gate.
	for i, d := range c.DFFs {
		drv := c.Gates[d].Fanin[0]
		if ev.NextState(i) != ev.Value(drv) {
			t.Errorf("NextState(%d) != driver value", i)
		}
	}
}
