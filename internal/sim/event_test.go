package sim

import (
	"testing"

	"limscan/internal/bmark"
	"limscan/internal/logic"
)

// TestEventEvaluatorEquivalence drives the event-driven evaluator
// through random input sequences with varying amounts of change and
// compares every gate value against full re-evaluation.
func TestEventEvaluatorEquivalence(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s420"} {
		c, err := bmark.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		full := NewEvaluator(c)
		ev := NewEventEvaluator(c)

		rng := uint64(42)
		next := func() uint64 {
			rng += 0x9E3779B97F4A7C15
			z := rng
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			return z ^ (z >> 31)
		}

		pi := make([]logic.Word, c.NumPI())
		st := make([]logic.Word, c.NumSV())
		for step := 0; step < 50; step++ {
			// Early steps change everything; later steps flip only one
			// input or state word, exercising the sparse path.
			if step < 5 {
				for i := range pi {
					pi[i] = next()
				}
				for i := range st {
					st[i] = next()
				}
			} else if step%2 == 0 {
				pi[int(next()%uint64(len(pi)))] = next()
			} else {
				st[int(next()%uint64(len(st)))] = next()
			}
			for i, w := range pi {
				full.SetPI(i, w)
				ev.SetPI(i, w)
			}
			for i, w := range st {
				full.SetState(i, w)
				ev.SetState(i, w)
			}
			full.Eval(nil)
			ev.Eval()
			for id := 0; id < c.NumGates(); id++ {
				if full.Value(id) != ev.Value(id) {
					t.Fatalf("%s step %d gate %s: event %x vs full %x",
						name, step, c.Gates[id].Name, ev.Value(id), full.Value(id))
				}
			}
		}
	}
}

func TestEventEvaluatorAccessors(t *testing.T) {
	c, err := bmark.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEventEvaluator(c)
	for i := 0; i < c.NumPI(); i++ {
		ev.SetPI(i, logic.AllOnes)
	}
	for i := 0; i < c.NumSV(); i++ {
		ev.SetState(i, 0)
	}
	ev.Eval()
	if ev.Inner() == nil {
		t.Fatal("Inner nil")
	}
	full := NewEvaluator(c)
	for i := 0; i < c.NumPI(); i++ {
		full.SetPI(i, logic.AllOnes)
	}
	for i := 0; i < c.NumSV(); i++ {
		full.SetState(i, 0)
	}
	full.Eval(nil)
	for i := 0; i < c.NumPO(); i++ {
		if ev.PO(i) != full.PO(i) {
			t.Error("PO mismatch")
		}
	}
	for i := 0; i < c.NumSV(); i++ {
		if ev.NextState(i) != full.NextState(i) {
			t.Error("NextState mismatch")
		}
	}
}
