package sim

import (
	"fmt"

	"limscan/internal/circuit"
	"limscan/internal/logic"
)

// Step describes one time unit of a scalar sequential simulation: the
// state at the start of the time unit, the primary input vector applied,
// and the resulting primary output vector.
type Step struct {
	State logic.Vec
	In    logic.Vec
	Out   logic.Vec
}

// Run simulates the fault-free circuit sequentially: starting from state
// si, it applies the vectors in order at functional speed and returns one
// Step per vector plus the final state reached after the last vector.
func Run(c *circuit.Circuit, si logic.Vec, vectors []logic.Vec) (steps []Step, final logic.Vec, err error) {
	if si.Len() != c.NumSV() {
		return nil, logic.Vec{}, fmt.Errorf("sim: initial state has %d bits, circuit has %d state variables", si.Len(), c.NumSV())
	}
	ev := NewEvaluator(c)
	state := si.Clone()
	for u, v := range vectors {
		if v.Len() != c.NumPI() {
			return nil, logic.Vec{}, fmt.Errorf("sim: vector %d has %d bits, circuit has %d inputs", u, v.Len(), c.NumPI())
		}
		for i := 0; i < c.NumPI(); i++ {
			ev.SetPI(i, logic.Spread(v.Get(i)))
		}
		for i := 0; i < c.NumSV(); i++ {
			ev.SetState(i, logic.Spread(state.Get(i)))
		}
		ev.Eval(nil)
		out := logic.NewVec(c.NumPO())
		for i := 0; i < c.NumPO(); i++ {
			out.Set(i, logic.Bit(ev.PO(i), 0))
		}
		steps = append(steps, Step{State: state.Clone(), In: v.Clone(), Out: out})
		next := logic.NewVec(c.NumSV())
		for i := 0; i < c.NumSV(); i++ {
			next.Set(i, logic.Bit(ev.NextState(i), 0))
		}
		state = next
	}
	return steps, state, nil
}
