package sim

import (
	"limscan/internal/circuit"
	"limscan/internal/logic"
)

// EventEvaluator is an event-driven alternative to Evaluator.Eval: after
// a full initial evaluation, subsequent evaluations only visit gates in
// the fanout cones of changed sources. For sequential stepping, where a
// large fraction of primary inputs and state bits repeat from cycle to
// cycle, this skips most of the netlist; for fault batches with wide
// divergence it degrades towards full evaluation (the ablation benchmark
// quantifies the crossover).
//
// It supports fault-free evaluation only: per-lane force injection makes
// change-propagation bookkeeping cost more than it saves.
type EventEvaluator struct {
	ev     *Evaluator
	primed bool
	dirty  []bool
	queue  [][]int // per level, gate IDs to evaluate
	maxLvl int
}

// NewEventEvaluator wraps an evaluator for event-driven use.
func NewEventEvaluator(c *circuit.Circuit) *EventEvaluator {
	e := &EventEvaluator{ev: NewEvaluator(c), dirty: make([]bool, c.NumGates())}
	e.maxLvl = c.Depth()
	e.queue = make([][]int, e.maxLvl+1)
	return e
}

// Inner returns the wrapped plain evaluator (for reading values).
func (e *EventEvaluator) Inner() *Evaluator { return e.ev }

// SetPI assigns a primary input word and schedules its cone when the
// value changed.
func (e *EventEvaluator) SetPI(i int, w logic.Word) {
	id := e.ev.c.Inputs[i]
	if e.primed && e.ev.val[id] == w {
		return
	}
	e.ev.val[id] = w
	e.touchFanout(id)
}

// SetState assigns a flip-flop output word, scheduling its cone on
// change.
func (e *EventEvaluator) SetState(i int, w logic.Word) {
	id := e.ev.c.DFFs[i]
	if e.primed && e.ev.val[id] == w {
		return
	}
	e.ev.val[id] = w
	e.touchFanout(id)
}

func (e *EventEvaluator) touchFanout(id int) {
	for _, fo := range e.ev.c.Gates[id].Fanout {
		e.schedule(fo)
	}
}

func (e *EventEvaluator) schedule(id int) {
	g := &e.ev.c.Gates[id]
	if g.Type == circuit.DFF || e.dirty[id] {
		return
	}
	e.dirty[id] = true
	e.queue[g.Level] = append(e.queue[g.Level], id)
}

// Eval propagates scheduled events in level order. The first call primes
// every gate with a full evaluation.
func (e *EventEvaluator) Eval() {
	if !e.primed {
		e.ev.Eval(nil)
		e.primed = true
		for l := range e.queue {
			e.queue[l] = e.queue[l][:0]
		}
		for i := range e.dirty {
			e.dirty[i] = false
		}
		return
	}
	for lvl := 0; lvl <= e.maxLvl; lvl++ {
		q := e.queue[lvl]
		for qi := 0; qi < len(q); qi++ {
			id := q[qi]
			e.dirty[id] = false
			g := &e.ev.c.Gates[id]
			w := e.ev.evalPlain(g)
			if w == e.ev.val[id] {
				continue
			}
			e.ev.val[id] = w
			e.touchFanout(id)
			// touchFanout may append to the current or later levels;
			// same-level appends (impossible in a levelized netlist,
			// since fanout is always at a strictly higher level) are
			// not a concern, and later levels are picked up by the
			// outer loop.
		}
		e.queue[lvl] = e.queue[lvl][:0]
	}
}

// Value reads a gate's current word.
func (e *EventEvaluator) Value(id int) logic.Word { return e.ev.Value(id) }

// PO reads a primary output word.
func (e *EventEvaluator) PO(i int) logic.Word { return e.ev.PO(i) }

// NextState reads a flip-flop's next-state word.
func (e *EventEvaluator) NextState(i int) logic.Word { return e.ev.NextState(i) }
