# Development and CI entry points. `make ci` is the gate: it runs vet,
# a full build, the race-enabled test suite (checking the concurrency
# claims of internal/obs and the sharded fault simulator), the plain
# tier-1 suite, the parallel-vs-serial differential suite under both a
# single-core and a multi-core scheduler, short native-fuzz smokes, the
# checkpoint/resume kill-and-restart smoke, the chaos sweep (every
# checkpoint I/O operation failure-injected in turn), and the
# performance-observability smoke (profiles, ledger, regression gate).

GO ?= go

.PHONY: ci vet build test race tier1 paradiff fuzz cksmoke chaos perfsmoke tracesmoke bench benchall

ci: vet build race tier1 paradiff fuzz cksmoke chaos perfsmoke tracesmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the repo's seed gate: build + test must stay green.
tier1:
	$(GO) build ./... && $(GO) test ./...

# paradiff runs every parallel-vs-serial differential test (all contain
# "Parallel" in their name) under the race detector, once with a
# single-core scheduler and once with a multi-core one, so
# scheduler-dependent merge bugs surface in the gate.
paradiff:
	GOMAXPROCS=1 $(GO) test -race -run Parallel -count=1 -short ./internal/fsim ./internal/baseline ./internal/core
	GOMAXPROCS=4 $(GO) test -race -run Parallel -count=1 ./internal/fsim ./internal/baseline ./internal/core

# fuzz runs the native fuzz targets briefly: long enough to exercise the
# mutator beyond the checked-in corpus, short enough for a CI gate.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 10s ./internal/fsim
	$(GO) test -run '^$$' -fuzz FuzzBenchParse -fuzztime 10s ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzBenchHostile -fuzztime 10s ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzCheckpointRoundTrip -fuzztime 10s ./internal/checkpoint

# cksmoke interrupts a real checkpointed limscan process with SIGINT,
# resumes it, and requires the final report to match an uninterrupted
# run byte for byte.
cksmoke:
	sh scripts/checkpoint_smoke.sh

# chaos sweeps deterministic I/O fault injection (short writes, torn
# renames, fsync errors, disk-full, ...) across EVERY checkpoint I/O
# operation of a checkpointed campaign, plus the panic-containment
# tests, under the race detector. LIMSCAN_CHAOS_FULL=1 upgrades the
# default bounded sweep to every injection point.
chaos:
	LIMSCAN_CHAOS_FULL=1 $(GO) test -race -count=1 -run 'Chaos|Panic' ./internal/core ./internal/fsim ./internal/baseline ./internal/iofault

# perfsmoke is the performance-observability end-to-end gate: a tiny
# profiled s298 campaign run twice, per-phase pprof files checked with
# `go tool pprof`, two ledger records compared with `perf diff`, and the
# latest gated with `perf check` against the committed generous-tolerance
# baseline (scripts/perf_baseline.json).
perfsmoke:
	sh scripts/perf_smoke.sh

# tracesmoke is the execution-tracing end-to-end gate: a tiny s298
# campaign recorded with -trace at -workers 4, the trace checked for one
# named track per worker and analyzed with `perf trace`, and the
# campaign report verified byte-identical with tracing on and off.
tracesmoke:
	sh scripts/trace_smoke.sh

# bench runs the fsim worker-scaling pair, writes the machine-readable
# scaling report (ns/op and speedup vs Workers=1 on the largest bmark
# circuit) to BENCH_fsim.json, and appends the sweep to the performance
# ledger (PERF_ledger.jsonl) for perf diff / perf check.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFsimWorkers' -benchmem .
	$(GO) run ./cmd/benchfsim -o BENCH_fsim.json -ledger PERF_ledger.jsonl

# benchall is the full benchmark sweep (paper tables + ablations).
benchall:
	$(GO) test -bench=. -benchmem ./...
