# Development and CI entry points. `make ci` is the gate: it runs vet,
# a full build, the race-enabled test suite (checking the concurrency
# claims of internal/obs and the sharded fault simulator), the plain
# tier-1 suite, the parallel-vs-serial differential suite under both a
# single-core and a multi-core scheduler, short native-fuzz smokes, the
# checkpoint/resume kill-and-restart smoke (in both fault-simulation
# modes), the chaos sweep (every checkpoint I/O operation
# failure-injected in turn), the performance-observability smoke
# (profiles, ledger, regression gate), the committed-bench
# pattern-parallel speedup gate, the campaign-service smoke (a real
# limscand: submit, cache hit, byte-identical reports, graceful stop),
# the distributed-dispatch chaos suite (fake-clock lease/epoch fencing
# scenarios), and the distributed-dispatch smoke (a real coordinator
# and worker fleet with a SIGKILLed worker mid-unit).

GO ?= go

.PHONY: ci vet build test race tier1 paradiff fuzz cksmoke chaos perfsmoke tracesmoke benchgate servesmoke chaosdispatch dispatchsmoke bench benchall

ci: vet build race tier1 paradiff fuzz cksmoke chaos perfsmoke tracesmoke benchgate servesmoke chaosdispatch dispatchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the repo's seed gate: build + test must stay green.
tier1:
	$(GO) build ./... && $(GO) test ./...

# paradiff runs every parallel-vs-serial differential test (all contain
# "Parallel" in their name) under the race detector, once with a
# single-core scheduler and once with a multi-core one, so
# scheduler-dependent merge bugs surface in the gate.
paradiff:
	GOMAXPROCS=1 $(GO) test -race -run Parallel -count=1 -short ./internal/fsim ./internal/baseline ./internal/core
	GOMAXPROCS=4 $(GO) test -race -run Parallel -count=1 ./internal/fsim ./internal/baseline ./internal/core

# fuzz runs the native fuzz targets briefly: long enough to exercise the
# mutator beyond the checked-in corpus, short enough for a CI gate.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 10s ./internal/fsim
	$(GO) test -run '^$$' -fuzz FuzzPPSFP -fuzztime 10s ./internal/fsim
	$(GO) test -run '^$$' -fuzz FuzzBenchParse -fuzztime 10s ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzBenchHostile -fuzztime 10s ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzCheckpointRoundTrip -fuzztime 10s ./internal/checkpoint

# cksmoke interrupts a real checkpointed limscan process with SIGINT,
# resumes it, and requires the final report to match an uninterrupted
# run byte for byte — once per fault-simulation mode, plus a cross-mode
# comparison of the straight reports.
cksmoke:
	sh scripts/checkpoint_smoke.sh

# chaos sweeps deterministic I/O fault injection (short writes, torn
# renames, fsync errors, disk-full, ...) across EVERY checkpoint I/O
# operation of a checkpointed campaign, plus the panic-containment
# tests, under the race detector. LIMSCAN_CHAOS_FULL=1 upgrades the
# default bounded sweep to every injection point.
chaos:
	LIMSCAN_CHAOS_FULL=1 $(GO) test -race -count=1 -run 'Chaos|Panic' ./internal/core ./internal/fsim ./internal/baseline ./internal/iofault

# perfsmoke is the performance-observability end-to-end gate: a tiny
# profiled s298 campaign run twice, per-phase pprof files checked with
# `go tool pprof`, two ledger records compared with `perf diff`, and the
# latest gated with `perf check` against the committed generous-tolerance
# baseline (scripts/perf_baseline.json).
perfsmoke:
	sh scripts/perf_smoke.sh

# tracesmoke is the execution-tracing end-to-end gate: a tiny s298
# campaign recorded with -trace at -workers 4, the trace checked for one
# named track per worker and analyzed with `perf trace`, and the
# campaign report verified byte-identical with tracing on and off.
tracesmoke:
	sh scripts/trace_smoke.sh

# benchgate re-checks the committed benchfsim sweep against the
# pattern-parallel speedup baseline: the latest benchfsim ledger record
# must show the single-thread PPSFP win (pattern_speedup_w1 >= 2x).
# Pure file check — no simulation — so it belongs in the ci gate; a
# fresh sweep (make bench) re-runs the same check on new numbers.
benchgate:
	$(GO) run ./cmd/perf check -ledger PERF_ledger.jsonl -baseline scripts/perf_baseline_fsim.json

# servesmoke boots a real limscand on a random port, submits the same
# s298 campaign twice, and requires: the first run's report
# byte-identical to the limscan CLI's, the resubmission served as a
# cache hit with identical bytes, the ledger showing one run plus one
# cache-hit record, and SIGTERM exiting 0.
servesmoke:
	sh scripts/serve_smoke.sh

# chaosdispatch runs the distributed-dispatch chaos suite under the race
# detector: a fake-clock fleet through clean drain, worker crash, zombie
# worker with stale-epoch fencing, duplicate delivery, network partition
# with local fallback, and a coordinator crash resumed from checkpoint —
# every scenario requiring a report byte-identical to the straight run.
chaosdispatch:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/dispatch

# dispatchsmoke boots a real limscand coordinator with -distributed plus
# a real two-worker limsworker fleet, SIGKILLs one worker while it
# provably holds a lease (confirmed via /v1/dispatch/stats), and
# requires the reassigned campaign's report byte-identical to the
# limscan CLI's, crash evidence in the ledger's dispatch stats, the
# stitched fleet trace downloadable mid-run with one process group per
# contacted worker (and a perf fleet verdict over the final trace),
# dispatch latency histograms in /metrics, and clean SIGTERM shutdowns.
dispatchsmoke:
	sh scripts/dispatch_smoke.sh

# bench runs the fsim benchmark pair: the in-package worker benchmark,
# then a cmd/benchfsim sweep over both fault-simulation modes at
# BENCH_WORKERS (default 1 — the mode-comparison configuration, never
# flagged degenerate on a small host). The sweep writes the
# machine-readable report (ns/op per mode, speedup vs Workers=1,
# pattern_speedup_w1) to BENCH_fsim.json, appends it to the performance
# ledger (PERF_ledger.jsonl) for perf diff / perf check, and gates the
# fresh record against the pattern-speedup baseline.
BENCH_WORKERS ?= 1
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFsimWorkers' -benchmem .
	$(GO) run ./cmd/benchfsim -workers $(BENCH_WORKERS) -o BENCH_fsim.json -ledger PERF_ledger.jsonl
	$(GO) run ./cmd/perf check -ledger PERF_ledger.jsonl -baseline scripts/perf_baseline_fsim.json

# benchall is the full benchmark sweep (paper tables + ablations).
benchall:
	$(GO) test -bench=. -benchmem ./...
