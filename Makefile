# Development and CI entry points. `make ci` is the gate: it runs vet,
# a full build, the race-enabled test suite (checking the concurrency
# claims of internal/obs), and the plain tier-1 suite.

GO ?= go

.PHONY: ci vet build test race tier1 bench

ci: vet build race tier1

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the repo's seed gate: build + test must stay green.
tier1:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...
