package limscan_test

import (
	"fmt"

	"limscan"
)

// The paper's Section 2 shift semantics: the s27 state 010 shifted one
// position to the right with fill bit 0 becomes 001.
func ExampleVec_shift() {
	state := limscan.MustVec("010")
	out := state.ShiftRight(0)
	fmt.Println(state.String(), "shifted-out bit:", out)
	// Output: 001 shifted-out bit: 0
}

// The closed-form cost of the base test set TS0, pinned to the first row
// of the paper's Table 5 (N_SV = 21, L_A = 8, L_B = 16, N = 64).
func ExampleCostModel_ncyc0() {
	m := limscan.CostModel{NSV: 21}
	fmt.Println(m.Ncyc0(8, 16, 64))
	// Output: 4245
}

// Loading the embedded real s27 netlist.
func ExampleLoadBenchmark() {
	c, err := limscan.LoadBenchmark("s27")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d PIs, %d POs, %d flip-flops\n",
		c.Name, c.NumPI(), c.NumPO(), c.NumSV())
	// Output: s27: 4 PIs, 1 POs, 3 flip-flops
}

// The paper's parameter grid in N_cyc0 order: the first combination for
// a 21-flip-flop scan chain is (8, 16, 64), as in Table 5.
func ExampleCombos() {
	first := limscan.Combos(21)[0]
	fmt.Printf("LA=%d LB=%d N=%d Ncyc0=%d\n", first.LA, first.LB, first.N, first.Ncyc0)
	// Output: LA=8 LB=16 N=64 Ncyc0=4245
}

// Humanized cycle counts in the paper's table style.
func ExampleHumanCycles() {
	fmt.Println(limscan.HumanCycles(25450), limscan.HumanCycles(3800000))
	// Output: 25.4K 3.8M
}
